(* JSON codec for explanations and pipeline results.

   The encoding keeps every field of Explanation.t so that
   decode (encode e) = e exactly — the round-trip property the response
   codec is tested against.  Presentation extras (rank, pretty form, SA
   descriptions, timings) ride along in the result payload and are
   ignored on decode. *)

open Nested

exception Decode_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Decode_error m)) fmt

let member name = function
  | Json.J_object fields -> List.assoc_opt name fields
  | _ -> None

let member_exn name j =
  match member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let to_int = function
  | Json.J_int n -> n
  | j -> fail "expected an integer, got %s" (Json.to_string j)

let to_list = function
  | Json.J_array xs -> xs
  | j -> fail "expected an array, got %s" (Json.to_string j)

let explanation_to_json (e : Whynot.Explanation.t) : Json.json =
  Json.J_object
    ([
       ("ops", Json.J_array (List.map (fun i -> Json.J_int i) (Whynot.Explanation.op_list e)));
       ("side_effect_lb", Json.J_int e.Whynot.Explanation.side_effect_lb);
       ("side_effect_ub", Json.J_int e.Whynot.Explanation.side_effect_ub);
       ("sa", Json.J_int e.Whynot.Explanation.sa);
     ]
    (* emitted only for sampled traces, so exact payloads are
       byte-identical to the pre-approximation protocol *)
    @
    match e.Whynot.Explanation.confidence with
    | None -> []
    | Some c -> [ ("confidence", Json.J_float c) ])

let explanation_of_json (j : Json.json) : Whynot.Explanation.t =
  let ops =
    List.fold_left
      (fun acc id -> Whynot.Explanation.Int_set.add (to_int id) acc)
      Whynot.Explanation.Int_set.empty
      (to_list (member_exn "ops" j))
  in
  let confidence =
    match member "confidence" j with
    | None -> None
    | Some (Json.J_float f) -> Some f
    | Some (Json.J_int n) -> Some (float_of_int n)
    | Some j -> fail "expected a number \"confidence\", got %s" (Json.to_string j)
  in
  Whynot.Explanation.make
    ~sa:(to_int (member_exn "sa" j))
    ?confidence
    ~lb:(to_int (member_exn "side_effect_lb" j))
    ~ub:(to_int (member_exn "side_effect_ub" j))
    ops

let explanations_to_json es = Json.J_array (List.map explanation_to_json es)

let explanations_of_json j = List.map explanation_of_json (to_list j)

let result_to_json ?(timings = true) (r : Whynot.Pipeline.result) : Json.json =
  let q = r.Whynot.Pipeline.question.Whynot.Question.query in
  let ranked =
    List.mapi
      (fun i e ->
        match explanation_to_json e with
        | Json.J_object fields ->
          Json.J_object
            (("rank", Json.J_int (i + 1))
            :: fields
            @ [ ("pretty", Json.J_string (Whynot.Explanation.to_string_with_query q e)) ])
        | j -> j)
      r.Whynot.Pipeline.explanations
  in
  let sas =
    List.map
      (fun (sa : Whynot.Alternatives.sa) ->
        Json.J_object
          [
            ("index", Json.J_int (sa.Whynot.Alternatives.index + 1));
            ("description", Json.J_string sa.Whynot.Alternatives.description);
          ])
      r.Whynot.Pipeline.sas
  in
  (* the approximation report rides only on budgeted/approximate runs —
     an exact result's payload is unchanged *)
  let approx_fields =
    match r.Whynot.Pipeline.approx with
    | None -> []
    | Some a ->
      [
        ( "approx",
          Json.J_object
            ([
               ("mode", Json.J_string a.Whynot.Approx.mode);
               ("confidence", Json.J_float a.Whynot.Approx.confidence);
               ("max_stride", Json.J_int a.Whynot.Approx.max_stride);
               ("skipped_candidates", Json.J_int a.Whynot.Approx.skipped);
             ]
            @ (match a.Whynot.Approx.top_k with
              | None -> []
              | Some k -> [ ("top_k", Json.J_int k) ])
            @
            match a.Whynot.Approx.budget_ms with
            | None -> []
            | Some b -> [ ("budget_ms", Json.J_float b) ]) );
      ]
  in
  let base =
    [ ("explanations", Json.J_array ranked); ("sas", Json.J_array sas) ]
    @ approx_fields
  in
  let timing_fields =
    if not timings then []
    else
      [
        ( "phases_ms",
          Json.J_object
            (List.map
               (fun (p, ms) -> (p, Json.J_float ms))
               (Whynot.Pipeline.phase_durations_ms r)) );
        ("total_ms", Json.J_float (Obs.Span.duration_ms r.Whynot.Pipeline.span));
      ]
  in
  Json.J_object (base @ timing_fields)

let result_explanations_of_json j =
  explanations_of_json (member_exn "explanations" j)
