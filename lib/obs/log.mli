(** Leveled structured logging — typed key→value records with monotone
    timestamps ({!Clock}), ambient trace-id stamping
    ({!Trace_context}), a bounded in-process ring buffer, and pluggable
    sinks.

    The level gate is one atomic load: a call at a disabled level never
    evaluates its field thunk.  Records that pass the gate are stored
    in the ring (the last N records are always inspectable) and handed
    to each registered sink under one lock, so sink output never
    interleaves.

    Call-site shape:
    {[
      Obs.Log.info "serve.request" (fun () ->
          [ Obs.Log.str "op" "explain"; Obs.Log.int "depth" d ])
    ]} *)

type level = Debug | Info | Warn | Error

val severity : level -> int
val level_to_string : level -> string
val level_of_string : string -> level option

(** [set_level None] disables all logging; [set_level (Some l)] enables
    records at [l] and above.  Default: [Some Info]. *)
val set_level : level option -> unit

val level : unit -> level option

(** One atomic load — the hot-path gate. *)
val enabled : level -> bool

(** {1 Records} *)

type field = string * Span.value

val str : string -> string -> field
val int : string -> int -> field
val float : string -> float -> field
val bool : string -> bool -> field

type record = {
  ts_ns : int;
  lvl : level;
  event : string;
  trace_id : string option;  (** the ambient {!Trace_context} at emit *)
  fields : field list;
}

(** [log lvl event fields] — [fields] is evaluated only when [lvl] is
    enabled. *)
val log : level -> string -> (unit -> field list) -> unit

val debug : string -> (unit -> field list) -> unit
val info : string -> (unit -> field list) -> unit
val warn : string -> (unit -> field list) -> unit
val err : string -> (unit -> field list) -> unit

(** {1 Ring buffer} *)

(** Replace the ring (default capacity 512), dropping stored records. *)
val set_ring_capacity : int -> unit

(** Stored records, oldest first (at most the ring capacity). *)
val recent : unit -> record list

val clear_ring : unit -> unit

(** {1 Sinks} *)

(** [add_sink name sink] registers (or replaces) a named sink.  Sinks
    run under the log lock — they must not themselves log.  A raising
    sink is ignored for that record. *)
val add_sink : string -> (record -> unit) -> unit

val remove_sink : string -> unit
val clear_sinks : unit -> unit

(** Human-readable single-line rendering. *)
val pp_text : Format.formatter -> record -> unit

(** Text sink on stderr. *)
val stderr_text_sink : record -> unit

(** JSON-lines sink: one object per line, flushed per record (a live
    log file is greppable mid-run). *)
val json_line_sink : out_channel -> record -> unit

(** In-memory collector for tests: returns the sink and a function
    yielding everything it has seen, oldest first. *)
val memory_sink : unit -> (record -> unit) * (unit -> record list)

(** {1 JSON codec}

    [of_json (to_json r) = r] — property-tested round-trip. *)

val to_json : record -> Nested.Json.json

exception Decode_error of string

(** Raises {!Decode_error}. *)
val of_json : Nested.Json.json -> record
