(* WN++ — the lineage-based Why-Not baseline [Chapman & Jagadish, SIGMOD
   2009], extended to nested data as in the paper's evaluation (Section
   6.2): compatibles may be nested elements, and flatten operators check
   successors at element granularity.

   WN++ traces successors of compatible input tuples forward through the
   *original* query and reports the first picky operator — the operator
   that filters the last successors.  It neither re-validates
   compatibility at later operators, nor reasons about schema
   alternatives, nor checks that unblocking the picky operator can
   actually produce the missing answer; these are exactly the weaknesses
   the paper's evaluation exhibits (incomplete explanations in T1/T4/Q3, a
   misleading join in Q10, no explanation at all in D2/D3/T_ASD/Q4). *)

let explanations ?parent (phi : Whynot.Question.t) : Explanation_set.t list =
  (* Same span shape as the pipeline's per-SA children, so overhead
     comparisons between RP and the baselines read off one trace. *)
  Obs.Span.with_ ?parent "wnpp.explain" @@ fun root ->
  let info =
    Obs.Span.with_ ~parent:root "tracing" (fun _ ->
        Lineage.original_trace phi)
  in
  Obs.Span.with_ ~parent:root "picky" @@ fun _ ->
  let successor = Lineage.successor_rids ~surviving_only:true info in
  match Lineage.picky_ops ~surviving_only:true info successor with
  | first :: _ -> [ Explanation_set.singleton info.Lineage.query first ]
  | [] ->
    (* Aggregate-style questions may constrain no input table at all (the
       constraint sits on an aggregate output); every input tuple is then
       a compatible whose loss influences the aggregate, and WN++ blames
       the filtering operator closest to the output. *)
    if
      not
        (Lineage.String_set.is_empty (Lineage.constrained_tables info))
    then []
    else
      let filtering =
        List.filter_map
          (fun (ot : Whynot.Tracing.op_trace) ->
            let drops_rows =
              let n = Whynot.Tracing.n_rows ot in
              let rec any i =
                i < n
                && ((not (Whynot.Tracing.retained_at ot i)) || any (i + 1))
              in
              any 0
            in
            match ot.Whynot.Tracing.op_node with
            | Nrab.Query.Table _ -> None
            | _ -> if drops_rows then Some ot.Whynot.Tracing.op_id else None)
          info.Lineage.trace.Whynot.Tracing.ops
      in
      (match List.rev filtering with
      | [] -> []
      | last :: _ -> [ Explanation_set.singleton info.Lineage.query last ])
