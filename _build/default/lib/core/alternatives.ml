(* Schema alternatives (Section 5.2).

   Attribute alternatives are provided as input (as in the paper, which
   assumes they come from the user, schema matching, or schema-free query
   processors): per input table, groups of mutually interchangeable
   attribute paths.  Enumeration mirrors Figure 3: every operator reference
   whose *source attribute* belongs to a group is a choice point; we take
   the cartesian product of choices and prune assignments that cannot be
   realized at the operator's input schema, yield an ill-typed query, or
   change the query's output schema.

   Source attributes of operator references are computed by a schema-level
   forward provenance pass (attribute origins). *)

open Nested
open Nrab
module Int_set = Opset.Int_set

type alternatives = (string * Path.t list) list
(* Each entry (table, group) is one group of interchangeable paths. *)

type sa = {
  index : int;  (* 0 is the original schema alternative S₁ *)
  query : Query.t;  (* the query with attribute substitutions applied *)
  changed_ops : Int_set.t;  (* operators whose parameters the SA changes *)
  description : string;
}

type origin = string * Path.t (* (table, path) *)

(* --- Attribute origins -------------------------------------------------- *)

(* For every operator, map each output attribute to its source attribute
   (table × path) when the attribute is a direct copy of source data.
   Needs the typing environment to know table schemas and the inner names
   introduced by flattening. *)
let origins ~(env : Typecheck.env) (q : Query.t) : (string * origin) list =
  let fields_of sub =
    match Typecheck.infer_result env sub with
    | Ok ty -> List.map fst (Vtype.relation_fields ty)
    | Error _ -> []
  in
  let rec go (q : Query.t) : (string * origin) list =
    match q.node, q.children with
    | Query.Table name, [] ->
      List.map (fun a -> (a, (name, [ a ]))) (fields_of q)
    | Query.Select _, [ c ] | Query.Dedup, [ c ] -> go c
    | Query.Union, [ l; _ ] | Query.Diff, [ l; _ ] -> go l
    | Query.Project cols, [ c ] ->
      let child = go c in
      List.filter_map
        (fun (name, e) ->
          match e with
          | Expr.Attr a ->
            Option.map (fun o -> (name, o)) (List.assoc_opt a child)
          | _ -> None)
        cols
    | Query.Rename pairs, [ c ] ->
      List.map
        (fun (a, o) ->
          match List.find_opt (fun (_, old) -> String.equal old a) pairs with
          | Some (fresh, _) -> (fresh, o)
          | None -> (a, o))
        (go c)
    | (Query.Join _ | Query.Product), [ l; r ] -> go l @ go r
    | (Query.Flatten_tuple a | Query.Flatten (_, a)), [ c ] ->
      let child = go c in
      let child_fields = fields_of c in
      let new_fields =
        List.filter (fun f -> not (List.mem f child_fields)) (fields_of q)
      in
      let inner =
        match List.assoc_opt a child with
        | Some (tbl, path) ->
          List.map (fun f -> (f, (tbl, path @ [ f ]))) new_fields
        | None -> []
      in
      child @ inner
    | (Query.Nest_tuple (pairs, _) | Query.Nest_rel (pairs, _)), [ c ] ->
      let attrs = List.map snd pairs in
      List.filter (fun (name, _) -> not (List.mem name attrs)) (go c)
    | Query.Agg_tuple _, [ c ] -> go c
    | Query.Group_agg (group, _), [ c ] ->
      let child = go c in
      List.filter_map
        (fun (label, a) ->
          Option.map (fun o -> (label, o)) (List.assoc_opt a child))
        group
    | _ -> []
  in
  go q

(* --- Choice points ------------------------------------------------------ *)

(* Attributes referenced in the parameters of an operator. *)
let referenced_attrs (node : Query.node) : string list =
  match node with
  | Query.Select p -> Expr.pred_attrs p
  | Query.Project cols -> List.concat_map (fun (_, e) -> Expr.attrs e) cols
  | Query.Join (_, p) -> Expr.pred_attrs p
  | Query.Flatten_tuple a | Query.Flatten (_, a) -> [ a ]
  | Query.Nest_tuple (pairs, _) | Query.Nest_rel (pairs, _) -> List.map snd pairs
  | Query.Agg_tuple (_, a, _) -> [ a ]
  | Query.Group_agg (group, aggs) ->
    List.map snd group @ List.filter_map (fun (_, a, _) -> a) aggs
  | Query.Rename _ | Query.Table _ | Query.Product | Query.Union | Query.Diff
  | Query.Dedup ->
    []

type choice_point = {
  cp_op : int;
  cp_attr : string;  (* the attribute name referenced at that operator *)
  cp_table : string;
  cp_options : Path.t list;  (* the group; first option = the original *)
}

let choice_points ~env (q : Query.t) (alts : alternatives) : choice_point list
    =
  let ops = Query.operators q in
  List.concat_map
    (fun (op : Query.t) ->
      let child_origins =
        List.concat_map (fun c -> origins ~env c) op.Query.children
      in
      List.filter_map
        (fun attr ->
          match List.assoc_opt attr child_origins with
          | None -> None
          | Some (tbl, path) -> (
            match
              List.find_opt
                (fun (t, group) ->
                  String.equal t tbl
                  && List.exists (fun p -> Path.equal p path) group)
                alts
            with
            | Some (_, group) ->
              let others =
                List.filter (fun p -> not (Path.equal p path)) group
              in
              Some
                {
                  cp_op = op.Query.id;
                  cp_attr = attr;
                  cp_table = tbl;
                  cp_options = path :: others;
                }
            | None -> None))
        (List.sort_uniq String.compare (referenced_attrs op.Query.node)))
    ops

(* --- Assignment application --------------------------------------------- *)

(* Substitute attribute references of one node. *)
let subst_node (node : Query.node) (subst : string -> string) : Query.node =
  match node with
  | Query.Select p -> Query.Select (Expr.subst_pred_attrs subst p)
  | Query.Project cols ->
    Query.Project (List.map (fun (n, e) -> (n, Expr.subst_attrs subst e)) cols)
  | Query.Join (k, p) -> Query.Join (k, Expr.subst_pred_attrs subst p)
  | Query.Flatten_tuple a -> Query.Flatten_tuple (subst a)
  | Query.Flatten (k, a) -> Query.Flatten (k, subst a)
  | Query.Nest_tuple (pairs, c) ->
    Query.Nest_tuple (List.map (fun (l, a) -> (l, subst a)) pairs, c)
  | Query.Nest_rel (pairs, c) ->
    Query.Nest_rel (List.map (fun (l, a) -> (l, subst a)) pairs, c)
  | Query.Agg_tuple (fn, a, b) -> Query.Agg_tuple (fn, subst a, b)
  | Query.Group_agg (group, aggs) ->
    Query.Group_agg
      ( List.map (fun (l, a) -> (l, subst a)) group,
        List.map (fun (fn, a, o) -> (fn, Option.map subst a, o)) aggs )
  | other -> other

(* Apply one assignment (choice point → selected path).  Processes
   operators bottom-up, looking up at each choice point an input attribute
   whose origin is the selected path.  Returns None when the assignment is
   not realizable (the pruning of Figure 3). *)
let apply_assignment ~env (q : Query.t)
    (assignment : (choice_point * Path.t) list) : (Query.t * Int_set.t) option
    =
  let changed = ref Int_set.empty in
  let exception Prune in
  let rec rebuild (op : Query.t) : Query.t =
    let children = List.map rebuild op.Query.children in
    let op = { op with Query.children } in
    let my_choices =
      List.filter (fun (cp, _) -> cp.cp_op = op.Query.id) assignment
    in
    if my_choices = [] then op
    else begin
      (* origins of the (already substituted) children *)
      let child_origins = List.concat_map (origins ~env) children in
      let subst a =
        match
          List.find_opt (fun (cp, _) -> String.equal cp.cp_attr a) my_choices
        with
        | None -> a
        | Some (cp, path) ->
          if Path.equal path (List.hd cp.cp_options) then a
          else (
            match
              List.find_opt
                (fun (_, (tbl, p)) ->
                  String.equal tbl cp.cp_table && Path.equal p path)
                child_origins
            with
            | Some (a', _) -> a'
            | None -> raise Prune)
      in
      let node' = subst_node op.Query.node subst in
      if node' <> op.Query.node then
        changed := Int_set.add op.Query.id !changed;
      { op with Query.node = node' }
    end
  in
  match rebuild q with
  | q' -> Some (q', !changed)
  | exception Prune -> None

(* --- Enumeration -------------------------------------------------------- *)

let rec assignments (cps : choice_point list) :
    (choice_point * Path.t) list list =
  match cps with
  | [] -> [ [] ]
  | cp :: rest ->
    let tails = assignments rest in
    List.concat_map
      (fun path -> List.map (fun tl -> (cp, path) :: tl) tails)
      cp.cp_options

let describe assignment =
  let changed =
    List.filter_map
      (fun (cp, path) ->
        if Path.equal path (List.hd cp.cp_options) then None
        else
          Some
            (Fmt.str "%s.%s→%s.%s" cp.cp_table
               (Path.to_string (List.hd cp.cp_options))
               cp.cp_table (Path.to_string path)))
      assignment
  in
  if changed = [] then "original" else String.concat ", " changed

let enumerate ?(max_sas = 16) ~(env : Typecheck.env) (q : Query.t)
    (alts : alternatives) : sa list =
  let original_schema = Typecheck.infer_result env q in
  let cps = choice_points ~env q alts in
  let all = assignments cps in
  let candidates =
    List.filter_map
      (fun assignment ->
        match apply_assignment ~env q assignment with
        | Some (q', changed) -> (
          (* pruning: must type-check and preserve the output schema *)
          match Typecheck.infer_result env q', original_schema with
          | Ok ty, Ok ty0 when Vtype.equal ty ty0 ->
            Some (q', changed, describe assignment)
          | _ -> None)
        | None -> None)
      all
  in
  (* dedupe by resulting query; the original (no changes) comes first *)
  let seen = Hashtbl.create 16 in
  let unique =
    List.filter
      (fun (q', _, _) ->
        let key = Query.to_string q' in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      candidates
  in
  let originals, others =
    List.partition (fun (_, changed, _) -> Int_set.is_empty changed) unique
  in
  let ordered = originals @ others in
  let ordered =
    if List.length ordered > max_sas then (
      Logs.warn (fun m ->
          m "schema alternatives truncated: %d candidates, keeping %d"
            (List.length ordered) max_sas);
      List.filteri (fun i _ -> i < max_sas) ordered)
    else ordered
  in
  List.mapi
    (fun i (q', changed, description) ->
      { index = i; query = q'; changed_ops = changed; description })
    ordered
