examples/spark_style_pipeline.mli:
