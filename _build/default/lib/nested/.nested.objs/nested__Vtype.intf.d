lib/nested/vtype.mli: Format Value
