(* Engine determinism cross-check.

   The columnar batch engine and the legacy row-at-a-time engine
   (WHYNOT_ROW_ENGINE=1) must be observationally identical: for every
   registry scenario, plain query evaluation returns the same relation
   and the full explanation pipeline renders byte-identical explanations
   (operator sets, side-effect bounds, schema-alternative indices, and
   ranking order all included in the rendering). *)

let with_engine row f =
  let saved = Engine.Columnar.row_engine () in
  Engine.Columnar.set_row_engine row;
  Fun.protect ~finally:(fun () -> Engine.Columnar.set_row_engine saved) f

let render_explanations (q : Nrab.Query.t) (rp : Whynot.Pipeline.result) =
  String.concat "\n"
    (List.map
       (fun (e : Whynot.Explanation.t) ->
         Fmt.str "%s lb=%d ub=%d sa=%d"
           (Whynot.Explanation.to_string_with_query q e)
           e.Whynot.Explanation.side_effect_lb
           e.Whynot.Explanation.side_effect_ub e.Whynot.Explanation.sa)
       rp.Whynot.Pipeline.explanations)

let test_scenario (s : Scenarios.Scenario.t) () =
  let inst = s.Scenarios.Scenario.make ~scale:1 () in
  let phi = inst.Scenarios.Scenario.question in
  let q = phi.Whynot.Question.query in
  let db = phi.Whynot.Question.db in
  let eval row =
    with_engine row (fun () ->
        let rel, _ = Engine.Exec.run db q in
        Fmt.str "%a" Nested.Relation.pp rel)
  in
  Alcotest.(check string) "query result byte-identical" (eval true) (eval false);
  let explain ?approx row =
    with_engine row (fun () ->
        render_explanations q
          (Whynot.Pipeline.explain ?approx
             ~alternatives:inst.Scenarios.Scenario.alternatives phi))
  in
  Alcotest.(check string) "explanations byte-identical" (explain true)
    (explain false);
  (* an untriggered budget must not perturb the run on either engine *)
  let unlimited () =
    Whynot.Approx.start
      { Whynot.Approx.exact with Whynot.Approx.budget_ms = Some 3.6e6 }
  in
  Alcotest.(check string) "no-budget run unchanged by an unlimited budget"
    (explain false)
    (explain ~approx:(unlimited ()) false);
  Alcotest.(check string) "budgeted runs byte-identical across engines"
    (explain ~approx:(unlimited ()) true)
    (explain ~approx:(unlimited ()) false)

let cases =
  List.map
    (fun (s : Scenarios.Scenario.t) ->
      Alcotest.test_case
        (s.Scenarios.Scenario.name ^ " row = columnar")
        `Quick (test_scenario s))
    Scenarios.Registry.all

let () = Alcotest.run "determinism" [ ("row-vs-columnar", cases) ]
