(** Nested relational types (Definition 1 of the paper).

    A nested relation schema is a bag type over a tuple type; attribute
    types may themselves be tuples or nested relations.  [⊥] ({!Value.Null})
    inhabits every type. *)

type t =
  | TBool
  | TInt
  | TFloat
  | TString
  | TTuple of (string * t) list
  | TBag of t

val compare : t -> t -> int
val equal : t -> t -> bool
val is_primitive : t -> bool

(** {1 Relation schemas} *)

(** [relation fields] is the schema [{{⟨fields⟩}}]. *)
val relation : (string * t) list -> t

(** Fields of a tuple type.  Raises on other types. *)
val tuple_fields : t -> (string * t) list

(** Element type of a bag type.  Raises on other types. *)
val element : t -> t

(** Fields of the tuples of a relation schema. *)
val relation_fields : t -> (string * t) list

(** [field label ty] is the type of field [label] of a tuple type. *)
val field : string -> t -> t option

(** Field labels of a tuple type; [[]] otherwise. *)
val labels : t -> string list

(** Concatenation of tuple types (the paper's ∘ on types). *)
val concat_tuples : t -> t -> t

(** {1 Values and types} *)

(** [has_type v ty]: does [v] inhabit [ty]?  [Null] inhabits everything. *)
val has_type : Value.t -> t -> bool

(** Most specific type of a value; [None] when parts are unconstrained
    (null subvalues) or the value is heterogeneous. *)
val infer : Value.t -> t option

(** The null-padded tuple [⟨A₁:⊥, …, Aₙ:⊥⟩] of a tuple type — what outer
    joins and outer flattens append. *)
val null_tuple : t -> Value.t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
