(* Plain operator-set explanations as returned by the lineage-based
   baselines (no side-effect bounds, no schema alternatives). *)

open Nrab
module Int_set = Set.Make (Int)

type t = { ops : Int_set.t; query : Query.t }

let make query ops = { ops; query }
let singleton query id = { ops = Int_set.singleton id; query }
let ops e = e.ops
let op_list e = Int_set.elements e.ops

let pp ppf (e : t) =
  let symbol id =
    match Query.find_op e.query id with
    | Some op -> Fmt.str "%s^%d" (Query.op_symbol op.Query.node) id
    | None -> Fmt.str "op^%d" id
  in
  Fmt.pf ppf "{%s}" (String.concat ", " (List.map symbol (op_list e)))

let to_string e = Fmt.str "%a" pp e
let equal a b = Int_set.equal a.ops b.ops
