(* Per-operator semantics tests against Table 1 of the paper, plus type
   checker behaviour. *)

open Nested
open Nrab

let v_int i = Value.Int i
let v_str s = Value.String s
let tup = Value.tuple

let r_schema = Vtype.relation [ ("a", Vtype.TInt); ("b", Vtype.TString) ]
let s_schema = Vtype.relation [ ("c", Vtype.TInt) ]

let r_rel =
  Relation.make ~schema:r_schema
    ~data:
      (Value.bag
         [
           (tup [ ("a", v_int 1); ("b", v_str "x") ], 2);
           (tup [ ("a", v_int 2); ("b", v_str "y") ], 1);
         ])

let s_rel =
  Relation.make ~schema:s_schema
    ~data:(Value.bag [ (tup [ ("c", v_int 1) ], 1); (tup [ ("c", v_int 3) ], 1) ])

let db = Relation.Db.of_list [ ("r", r_rel); ("s", s_rel) ]

let eval q = Eval.eval db q
let g () = Query.Gen.create ()

let check_bag msg expected actual =
  Alcotest.(check string) msg (Value.to_string expected) (Value.to_string (Relation.data actual))

(* --- scan / select / project / rename --- *)

let test_table_access () =
  let q = Query.table (g ()) "r" in
  check_bag "table access returns the relation" (Relation.data r_rel) (eval q)

let test_select () =
  let gen = g () in
  let q = Query.select gen (Expr.Cmp (Expr.Gt, Expr.attr "a", Expr.int 1)) (Query.table gen "r") in
  check_bag "selection filters with multiplicities"
    (Value.bag [ (tup [ ("a", v_int 2); ("b", v_str "y") ], 1) ])
    (eval q)

let test_project_merges_multiplicities () =
  let gen = g () in
  (* both r-tuples project to distinct values; multiplicities preserved *)
  let q = Query.project_attrs gen [ "a" ] (Query.table gen "r") in
  check_bag "projection sums multiplicities"
    (Value.bag [ (tup [ ("a", v_int 1) ], 2); (tup [ ("a", v_int 2) ], 1) ])
    (eval q)

let test_project_collapses () =
  let gen = g () in
  (* projecting on a constant column collapses everything *)
  let q = Query.project gen [ ("k", Expr.int 0) ] (Query.table gen "r") in
  check_bag "projection can merge tuples" (Value.bag [ (tup [ ("k", v_int 0) ], 3) ]) (eval q)

let test_rename () =
  let gen = g () in
  let q = Query.rename gen [ ("alpha", "a") ] (Query.table gen "r") in
  let ty = Typecheck.infer [ ("r", r_schema) ] q in
  Alcotest.(check (list string)) "renamed schema" [ "alpha"; "b" ]
    (List.map fst (Vtype.relation_fields ty))

(* --- joins (Table 1 padding semantics) --- *)

let join_q kind =
  let gen = g () in
  Query.join gen kind (Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.attr "c"))
    (Query.table gen "r") (Query.table gen "s")

let test_inner_join () =
  check_bag "inner join with multiplicities"
    (Value.bag [ (tup [ ("a", v_int 1); ("b", v_str "x"); ("c", v_int 1) ], 2) ])
    (eval (join_q Query.Inner))

let test_left_join () =
  check_bag "left join pads unmatched left tuples"
    (Value.bag
       [
         (tup [ ("a", v_int 1); ("b", v_str "x"); ("c", v_int 1) ], 2);
         (tup [ ("a", v_int 2); ("b", v_str "y"); ("c", Value.Null) ], 1);
       ])
    (eval (join_q Query.Left))

let test_right_join () =
  check_bag "right join pads unmatched right tuples"
    (Value.bag
       [
         (tup [ ("a", v_int 1); ("b", v_str "x"); ("c", v_int 1) ], 2);
         (tup [ ("a", Value.Null); ("b", Value.Null); ("c", v_int 3) ], 1);
       ])
    (eval (join_q Query.Right))

let test_full_join () =
  Alcotest.(check int) "full outer join cardinality" 4
    (Relation.cardinal (eval (join_q Query.Full)))

(* --- union / diff / dedup / product --- *)

let test_union_adds_multiplicities () =
  let gen = g () in
  let q = Query.union gen (Query.table gen "r") (Query.table gen "r") in
  Alcotest.(check int) "k+l semantics" 6 (Relation.cardinal (eval q))

let test_diff () =
  let gen = g () in
  let filtered =
    Query.select gen (Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.int 1)) (Query.table gen "r")
  in
  let q = Query.diff gen (Query.table gen "r") filtered in
  check_bag "bag difference"
    (Value.bag [ (tup [ ("a", v_int 2); ("b", v_str "y") ], 1) ])
    (eval q)

let test_dedup () =
  let gen = g () in
  let q = Query.dedup gen (Query.table gen "r") in
  Alcotest.(check int) "dedup to multiplicity 1" 2 (Relation.cardinal (eval q))

let test_product () =
  let gen = g () in
  let q = Query.product gen (Query.table gen "r") (Query.table gen "s") in
  Alcotest.(check int) "product multiplicities" 6 (Relation.cardinal (eval q))

(* --- flatten / nest (nested data) --- *)

let nested_schema =
  Vtype.relation
    [
      ("n", Vtype.TString);
      ("kids", Vtype.relation [ ("k", Vtype.TInt) ]);
      ("meta", Vtype.TTuple [ ("m", Vtype.TInt) ]);
    ]

let nested_rel =
  Relation.of_tuples ~schema:nested_schema
    [
      tup
        [
          ("n", v_str "one");
          ("kids", Value.bag_of_list [ tup [ ("k", v_int 1) ]; tup [ ("k", v_int 2) ] ]);
          ("meta", tup [ ("m", v_int 10) ]);
        ];
      tup
        [ ("n", v_str "two"); ("kids", Value.empty_bag); ("meta", Value.Null) ];
    ]

let ndb = Relation.Db.of_list [ ("t", nested_rel) ]

let test_flatten_inner () =
  let gen = g () in
  let q = Query.flatten_inner gen "kids" (Query.table gen "t") in
  let result = Eval.eval ndb q in
  (* "two" has an empty nested relation and disappears *)
  Alcotest.(check int) "inner flatten" 2 (Relation.cardinal result);
  Alcotest.(check bool) "keeps original attribute" true
    (List.mem "kids" (Relation.attribute_names result))

let test_flatten_outer_pads () =
  let gen = g () in
  let q = Query.flatten_outer gen "kids" (Query.table gen "t") in
  let result = Eval.eval ndb q in
  Alcotest.(check int) "outer flatten keeps empty" 3 (Relation.cardinal result);
  let padded =
    List.filter
      (fun t -> Value.field "k" t = Some Value.Null)
      (Relation.tuples result)
  in
  Alcotest.(check int) "padded row" 1 (List.length padded)

let test_flatten_tuple () =
  let gen = g () in
  let q = Query.flatten_tuple gen "meta" (Query.table gen "t") in
  let result = Eval.eval ndb q in
  Alcotest.(check int) "tuple flatten keeps all rows" 2 (Relation.cardinal result);
  let null_padded =
    List.filter
      (fun t -> Value.field "m" t = Some Value.Null)
      (Relation.tuples result)
  in
  Alcotest.(check int) "null tuple attribute padded" 1 (List.length null_padded)

let test_nest_rel_roundtrip () =
  let gen = g () in
  (* flatten then re-nest recovers the grouping *)
  let q =
    Query.nest_rel gen [ "k" ] ~into:"kids2"
      (Query.project_attrs gen [ "n"; "k" ]
         (Query.flatten_inner gen "kids" (Query.table gen "t")))
  in
  let result = Eval.eval ndb q in
  Alcotest.(check int) "one group" 1 (Relation.cardinal result);
  let t = List.hd (Relation.tuples result) in
  Alcotest.(check int) "group has two members" 2
    (Value.cardinal (Option.get (Value.field "kids2" t)))

let test_nest_tuple () =
  let gen = g () in
  let q =
    Query.nest_tuple gen [ "a"; "b" ] ~into:"ab" (Query.table gen "r")
  in
  let result = eval q in
  let t = List.hd (Relation.tuples result) in
  Alcotest.(check (list string)) "nested labels" [ "ab" ] (Value.labels t)

let test_nest_rel_multiplicity_one () =
  (* Table 1: relation nesting outputs each group with multiplicity 1 *)
  let gen = g () in
  let q = Query.nest_rel gen [ "b" ] ~into:"bs" (Query.table gen "r") in
  let result = eval q in
  List.iter
    (fun (_, m) -> Alcotest.(check int) "multiplicity 1" 1 m)
    (Value.elems (Relation.data result))

(* --- aggregation --- *)

let test_agg_tuple_count_skips_nulls () =
  let gen = g () in
  let q =
    Query.agg_tuple gen Agg.Count ~over:"kids" ~into:"cnt" (Query.table gen "t")
  in
  let result = Eval.eval ndb q in
  let counts =
    List.map (fun t -> Option.get (Value.field "cnt" t)) (Relation.tuples result)
  in
  Alcotest.(check bool) "counts 2 and 0" true
    (List.sort Value.compare counts = [ v_int 0; v_int 2 ])

let test_group_agg () =
  let gen = g () in
  let q =
    Query.group_agg gen [ "a" ]
      [ (Agg.Count, None, "n"); (Agg.Min, Some "b", "min_b") ]
      (Query.table gen "r")
  in
  let result = eval q in
  Alcotest.(check int) "two groups" 2 (Relation.cardinal result);
  let group1 =
    List.find
      (fun t -> Value.field "a" t = Some (v_int 1))
      (Relation.tuples result)
  in
  Alcotest.(check bool) "count respects multiplicities" true
    (Value.field "n" group1 = Some (v_int 2))

let test_group_agg_empty_group_list () =
  let gen = g () in
  let q = Query.group_agg gen [] [ (Agg.Sum, Some "a", "total") ] (Query.table gen "r") in
  let result = eval q in
  Alcotest.(check int) "single global group" 1 (Relation.cardinal result);
  Alcotest.(check bool) "sum over multiplicities" true
    (Value.field "total" (List.hd (Relation.tuples result)) = Some (v_int 4))

(* --- aggregation functions --- *)

let test_agg_functions () =
  let vs = [ v_int 1; v_int 2; Value.Null; v_int 3 ] in
  Alcotest.(check bool) "sum skips null" true (Agg.apply Agg.Sum vs = v_int 6);
  Alcotest.(check bool) "count skips null" true (Agg.apply Agg.Count vs = v_int 3);
  Alcotest.(check bool) "min" true (Agg.apply Agg.Min vs = v_int 1);
  Alcotest.(check bool) "max" true (Agg.apply Agg.Max vs = v_int 3);
  Alcotest.(check bool) "avg" true (Agg.apply Agg.Avg vs = Value.Float 2.0);
  Alcotest.(check bool) "empty sum is null" true (Agg.apply Agg.Sum [] = Value.Null);
  Alcotest.(check bool) "empty count is 0" true (Agg.apply Agg.Count [] = v_int 0);
  Alcotest.(check bool) "count distinct" true
    (Agg.apply Agg.Count_distinct [ v_int 1; v_int 1; v_int 2 ] = v_int 2)

let test_achievable_range () =
  let vs = [ Value.Float 2.0; Value.Float (-1.0); Value.Float 3.0 ] in
  Alcotest.(check bool) "sum range" true
    (Agg.achievable_range Agg.Sum vs = Some (-1.0, 5.0));
  Alcotest.(check bool) "count range" true
    (Agg.achievable_range Agg.Count vs = Some (0.0, 3.0));
  Alcotest.(check bool) "avg range" true
    (Agg.achievable_range Agg.Avg vs = Some (-1.0, 3.0));
  Alcotest.(check bool) "empty sum range" true
    (Agg.achievable_range Agg.Sum [] = None)

(* --- type checking --- *)

let env = [ ("r", r_schema); ("s", s_schema); ("t", nested_schema) ]

let test_typecheck_errors () =
  let expect_error q =
    match Typecheck.infer_result env q with
    | Error _ -> ()
    | Ok ty -> Alcotest.failf "expected type error, got %a" Vtype.pp ty
  in
  let gen = g () in
  expect_error (Query.select gen (Expr.Cmp (Expr.Eq, Expr.attr "zz", Expr.int 1)) (Query.table gen "r"));
  expect_error (Query.flatten_inner gen "meta" (Query.table gen "t"));
  expect_error (Query.flatten_tuple gen "kids" (Query.table gen "t"));
  expect_error (Query.union gen (Query.table gen "r") (Query.table gen "s"));
  expect_error (Query.table gen "unknown");
  expect_error
    (Query.select gen
       (Expr.Cmp (Expr.Lt, Expr.attr "b", Expr.int 3))
       (Query.table gen "r"))

let test_typecheck_join_name_clash () =
  let gen = g () in
  let q = Query.product gen (Query.table gen "r") (Query.table gen "r") in
  match Typecheck.infer_result env q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self product must fail on duplicate names"

let test_output_types () =
  let gen = g () in
  let q = Query.nest_rel gen [ "b" ] ~into:"bs" (Query.table gen "r") in
  let ty = Typecheck.infer env q in
  Alcotest.(check string) "nest_rel output type"
    "{{⟨a: INT, bs: {{⟨b: STR⟩}}⟩}}" (Vtype.to_string ty)

(* --- evaluator totality: every operator id is evaluable --- *)

let test_query_traversals () =
  let gen = g () in
  let q =
    Query.select gen Expr.True
      (Query.join gen Query.Inner Expr.True (Query.table gen "r") (Query.table gen "s"))
  in
  Alcotest.(check int) "op count" 4 (Query.op_count q);
  Alcotest.(check (list string)) "input tables" [ "r"; "s" ] (Query.input_tables q);
  let ops = Query.operators q in
  Alcotest.(check bool) "topological: root last" true
    ((List.nth ops 3).Query.id = q.Query.id)

(* --- fragments (Table 3) --- *)

let test_fragment_classification () =
  let gen = g () in
  let spc =
    Query.project_attrs gen [ "a" ]
      (Query.select gen Expr.True
         (Query.join gen Query.Inner Expr.True (Query.table gen "r") (Query.table gen "s")))
  in
  Alcotest.(check string) "SPC" "SPC" (Fragment.to_string (Fragment.classify spc));
  let gen = g () in
  let spc_plus = Query.union gen (Query.table gen "r") (Query.table gen "r") in
  Alcotest.(check string) "SPC+" "SPC+" (Fragment.to_string (Fragment.classify spc_plus));
  let gen = g () in
  let nrab = Query.flatten_inner gen "kids" (Query.table gen "t") in
  Alcotest.(check string) "NRAB" "NRAB" (Fragment.to_string (Fragment.classify nrab));
  let gen = g () in
  let outer =
    Query.join gen Query.Left Expr.True (Query.table gen "r") (Query.table gen "s")
  in
  Alcotest.(check string) "outer joins leave SPC" "NRAB"
    (Fragment.to_string (Fragment.classify outer))

let test_fragment_expressiveness () =
  (* Table 3: projections are reparameterization-only; nesting needs NRAB *)
  Alcotest.(check bool) "lineage cannot blame projections" false
    (Fragment.explainable Fragment.Lineage_based Fragment.Spc Query.Op_project);
  Alcotest.(check bool) "reparameterization can" true
    (Fragment.explainable Fragment.Reparameterization_based Fragment.Spc
       Query.Op_project);
  Alcotest.(check bool) "nesting only in NRAB" false
    (Fragment.explainable Fragment.Reparameterization_based Fragment.Spc_plus
       Query.Op_nest);
  Alcotest.(check bool) "nesting in NRAB" true
    (Fragment.explainable Fragment.Reparameterization_based Fragment.Nrab
       Query.Op_nest)

let () =
  Alcotest.run "nrab"
    [
      ( "basic-operators",
        [
          Alcotest.test_case "table access" `Quick test_table_access;
          Alcotest.test_case "selection" `Quick test_select;
          Alcotest.test_case "projection multiplicities" `Quick test_project_merges_multiplicities;
          Alcotest.test_case "projection collapse" `Quick test_project_collapses;
          Alcotest.test_case "renaming" `Quick test_rename;
        ] );
      ( "joins",
        [
          Alcotest.test_case "inner" `Quick test_inner_join;
          Alcotest.test_case "left outer" `Quick test_left_join;
          Alcotest.test_case "right outer" `Quick test_right_join;
          Alcotest.test_case "full outer" `Quick test_full_join;
        ] );
      ( "bags",
        [
          Alcotest.test_case "union" `Quick test_union_adds_multiplicities;
          Alcotest.test_case "difference" `Quick test_diff;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "product" `Quick test_product;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "inner flatten" `Quick test_flatten_inner;
          Alcotest.test_case "outer flatten" `Quick test_flatten_outer_pads;
          Alcotest.test_case "tuple flatten" `Quick test_flatten_tuple;
          Alcotest.test_case "nest roundtrip" `Quick test_nest_rel_roundtrip;
          Alcotest.test_case "tuple nesting" `Quick test_nest_tuple;
          Alcotest.test_case "nest multiplicity" `Quick test_nest_rel_multiplicity_one;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "per-tuple count" `Quick test_agg_tuple_count_skips_nulls;
          Alcotest.test_case "group aggregation" `Quick test_group_agg;
          Alcotest.test_case "global aggregation" `Quick test_group_agg_empty_group_list;
          Alcotest.test_case "aggregate functions" `Quick test_agg_functions;
          Alcotest.test_case "achievable ranges" `Quick test_achievable_range;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "errors" `Quick test_typecheck_errors;
          Alcotest.test_case "join name clash" `Quick test_typecheck_join_name_clash;
          Alcotest.test_case "output types" `Quick test_output_types;
        ] );
      ( "traversals",
        [ Alcotest.test_case "operators and tables" `Quick test_query_traversals ] );
      ( "fragments",
        [
          Alcotest.test_case "classification" `Quick test_fragment_classification;
          Alcotest.test_case "Table 3 expressiveness" `Quick test_fragment_expressiveness;
        ] );
    ]
