lib/core/nip.ml: Array Expr Fmt List Nested Nrab Option Queue Stdlib String Value Vtype
