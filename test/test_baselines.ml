(* Baseline behaviour tests: Why-Not's picky-operator semantics and
   Conseil's continue-past-picky semantics on controlled examples
   (including the Example 2 adaptation from the paper's introduction). *)

open Nested
open Nrab
module Nip = Whynot.Nip

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let addr c y = Value.Tuple [ ("city", Value.String c); ("year", Value.Int y) ]

let person name a1 a2 =
  Value.Tuple
    [
      ("name", Value.String name);
      ("address1", Value.bag_of_list a1);
      ("address2", Value.bag_of_list a2);
    ]

let db =
  Relation.Db.of_list
    [
      ( "person",
        Relation.of_tuples ~schema:person_schema
          [
            person "Peter"
              [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
              [ addr "LA" 2010; addr "SF" 2018 ];
            person "Sue" [ addr "LA" 2019; addr "NY" 2018 ] [ addr "LA" 2019; addr "NY" 2018 ];
          ] );
    ]

let query =
  let g = Query.Gen.create () in
  Query.nest_rel ~id:5 g [ "name" ] ~into:"nList"
    (Query.project_attrs ~id:4 g [ "name"; "city" ]
       (Query.select ~id:3 g
          (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
          (Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person"))))

let missing = Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.some_element) ]
let phi = Whynot.Question.make ~query ~db ~missing

(* Example 2 of the paper: WN++ identifies the selection as picky.  The
   compatible nested element (NY, 2018) passes the flatten; its successor
   dies at σ. *)
let test_example2_wnpp () =
  let expls = Baselines.Wnpp.explanations phi in
  Alcotest.(check (list (list int))) "the selection is picky" [ [ 3 ] ]
    (List.map Baselines.Explanation_set.op_list expls)

let test_example2_conseil () =
  let expls = Baselines.Conseil.explanations phi in
  Alcotest.(check (list (list int))) "conseil agrees here" [ [ 3 ] ]
    (List.map Baselines.Explanation_set.op_list expls)

(* Element granularity: tracking whole tuples would see Sue's LA-2019 row
   survive the selection and report nothing — the "straightforward
   extension" failure mode the introduction describes.  Our WN++ tracks
   the compatible *element* and does report σ (tested above); here we
   check the successor sets directly. *)
let test_element_granular_successors () =
  let info = Baselines.Lineage.original_trace phi in
  let succ = Baselines.Lineage.successor_rids ~surviving_only:true info in
  let flatten_rows =
    match Whynot.Tracing.op_trace info.Baselines.Lineage.trace 2 with
    | Some ot -> Whynot.Tracing.rows ot
    | None -> []
  in
  let successor_cities =
    List.filter_map
      (fun (r : Whynot.Tracing.trow) ->
        if Hashtbl.mem succ r.Whynot.Tracing.rid then
          Value.field "city" r.Whynot.Tracing.data
        else None)
      flatten_rows
  in
  Alcotest.(check bool) "only the NY element is a successor" true
    (successor_cities = [ Value.String "NY" ])

let test_constrained_tables () =
  let info = Baselines.Lineage.original_trace phi in
  let ct = Baselines.Lineage.constrained_tables info in
  Alcotest.(check (list string)) "person is constrained" [ "person" ]
    (Baselines.Lineage.String_set.elements ct)

(* An unconstrained-question case: the picky fallback. *)
let test_wnpp_no_picky_no_explanation () =
  (* asking for an answer that the query already produces partially —
     compatible survives to the output — WN++ stays silent *)
  let missing = Nip.tup [ ("city", Nip.str "LA"); ("nList", Nip.bag [ Nip.any; Nip.any ]) ] in
  let phi = Whynot.Question.make ~query ~db ~missing in
  Alcotest.(check bool) "proper question" true (Whynot.Question.is_proper phi);
  Alcotest.(check int) "WN++ finds nothing" 0
    (List.length (Baselines.Wnpp.explanations phi))

let () =
  Alcotest.run "baselines"
    [
      ( "example-2",
        [
          Alcotest.test_case "WN++ picky selection" `Quick test_example2_wnpp;
          Alcotest.test_case "Conseil" `Quick test_example2_conseil;
          Alcotest.test_case "element-granular successors" `Quick
            test_element_granular_successors;
          Alcotest.test_case "constrained tables" `Quick test_constrained_tables;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "no picky operator" `Quick
            test_wnpp_no_picky_no_explanation;
        ] );
    ]
