(* NIP matching tests: Definitions 3–4 of the paper, including the
   worked Examples 6 and 7, and multiplicity-assignment edge cases. *)

open Nested
module Nip = Whynot.Nip

let v_int i = Value.Int i
let v_str s = Value.String s
let tup = Value.tuple

let name n = tup [ ("name", v_str n) ]

(* Example 6: t = ⟨city: NY, nList: {{⟨name:Sue⟩², ⟨name:Peter⟩}}⟩ *)
let t_ex6 =
  tup
    [
      ("city", v_str "NY");
      ("nList", Value.bag [ (name "Sue", 2); (name "Peter", 1) ]);
    ]

let test_example6 () =
  (* t_ex = ⟨city: NY, nList: {{?, *}}⟩ matches *)
  let t_ex = Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.bag ~star:true [ Nip.any ]) ] in
  Alcotest.(check bool) "{{?, *}} matches" true (Nip.matches t_ex6 t_ex);
  (* t'_ex = ⟨city: NY, nList: {{?, ?}}⟩ does NOT match (3 elements vs 2) *)
  let t_ex' =
    Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.bag [ Nip.any; Nip.any ]) ]
  in
  Alcotest.(check bool) "{{?, ?}} does not match" false (Nip.matches t_ex6 t_ex')

let test_example6_exact_multiplicity () =
  let three_anys =
    Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.bag [ Nip.any; Nip.any; Nip.any ]) ]
  in
  Alcotest.(check bool) "{{?, ?, ?}} matches exactly" true
    (Nip.matches t_ex6 three_anys)

(* Example 7: the NIP matches Sue's tuple from Figure 1a. *)
let sue =
  tup
    [
      ("name", v_str "Sue");
      ( "address1",
        Value.bag_of_list
          [
            tup [ ("city", v_str "LA"); ("year", v_int 2019) ];
            tup [ ("city", v_str "NY"); ("year", v_int 2018) ];
          ] );
      ( "address2",
        Value.bag_of_list
          [
            tup [ ("city", v_str "LA"); ("year", v_int 2019) ];
            tup [ ("city", v_str "NY"); ("year", v_int 2018) ];
          ] );
    ]

let test_example7 () =
  let nip =
    Nip.tup
      [
        ("name", Nip.str "Sue");
        ("address1", Nip.any);
        ( "address2",
          Nip.bag ~star:true
            [ Nip.tup [ ("city", Nip.any); ("year", Nip.int 2019) ] ] );
      ]
  in
  Alcotest.(check bool) "Example 7 matches" true (Nip.matches sue nip)

let test_example7_no_match () =
  let nip =
    Nip.tup
      [
        ("name", Nip.str "Sue");
        ( "address2",
          Nip.bag ~star:true
            [ Nip.tup [ ("city", Nip.str "SF"); ("year", Nip.any) ] ] );
      ]
  in
  Alcotest.(check bool) "SF not in address2" false (Nip.matches sue nip)

(* --- placeholders --- *)

let test_any_matches_everything () =
  List.iter
    (fun v -> Alcotest.(check bool) "? matches" true (Nip.matches v Nip.any))
    [ Value.Null; v_int 1; v_str "x"; sue; Value.empty_bag ]

let test_prim_equality () =
  Alcotest.(check bool) "equal" true (Nip.matches (v_int 5) (Nip.int 5));
  Alcotest.(check bool) "not equal" false (Nip.matches (v_int 5) (Nip.int 6));
  Alcotest.(check bool) "null vs const" false (Nip.matches Value.Null (Nip.int 5))

let test_pred_placeholder () =
  Alcotest.(check bool) "5 > 3" true
    (Nip.matches (v_int 5) (Nip.pred Nrab.Expr.Gt (v_int 3)));
  Alcotest.(check bool) "5 > 7 fails" false
    (Nip.matches (v_int 5) (Nip.pred Nrab.Expr.Gt (v_int 7)));
  Alcotest.(check bool) "null fails predicates" false
    (Nip.matches Value.Null (Nip.pred Nrab.Expr.Gt (v_int 0)));
  Alcotest.(check bool) "float coercion" true
    (Nip.matches (Value.Float 0.5) (Nip.pred Nrab.Expr.Ge (v_int 0)))

let test_tuple_partial_constraints () =
  (* a tuple pattern only constrains the fields it mentions *)
  let p = Nip.tup [ ("name", Nip.str "Sue") ] in
  Alcotest.(check bool) "partial tuple pattern" true (Nip.matches sue p);
  let p_missing = Nip.tup [ ("nonexistent", Nip.any) ] in
  Alcotest.(check bool) "pattern field must exist" false (Nip.matches sue p_missing)

(* --- bag assignment (condition 4) --- *)

let test_bag_exact_counts () =
  let b = Value.bag [ (v_int 1, 2); (v_int 2, 1) ] in
  Alcotest.(check bool) "exact pattern multiset" true
    (Nip.matches b (Nip.bag [ Nip.int 1; Nip.int 1; Nip.int 2 ]));
  Alcotest.(check bool) "wrong multiplicity" false
    (Nip.matches b (Nip.bag [ Nip.int 1; Nip.int 2; Nip.int 2 ]));
  Alcotest.(check bool) "missing element without star" false
    (Nip.matches b (Nip.bag [ Nip.int 1; Nip.int 2 ]));
  Alcotest.(check bool) "star absorbs surplus" true
    (Nip.matches b (Nip.bag ~star:true [ Nip.int 1; Nip.int 2 ]))

let test_bag_demands_not_coverable () =
  let b = Value.bag [ (v_int 1, 1) ] in
  Alcotest.(check bool) "demand exceeds supply" false
    (Nip.matches b (Nip.bag ~star:true [ Nip.int 1; Nip.int 1 ]))

let test_bag_assignment_conflict () =
  (* two pattern slots competing for the same single element *)
  let b = Value.bag [ (v_int 1, 1); (v_int 2, 1) ] in
  let p = Nip.bag [ Nip.pred Nrab.Expr.Ge (v_int 1); Nip.int 1 ] in
  (* ≥1 must take the 2, the exact-1 takes the 1: feasible *)
  Alcotest.(check bool) "assignment routes around conflicts" true (Nip.matches b p);
  let p2 = Nip.bag [ Nip.int 1; Nip.int 1 ] in
  Alcotest.(check bool) "cannot double-use an element" false (Nip.matches b p2)

let test_empty_bag_patterns () =
  Alcotest.(check bool) "{{}} matches empty" true
    (Nip.matches Value.empty_bag (Nip.bag []));
  Alcotest.(check bool) "{{}} rejects non-empty" false
    (Nip.matches (Value.bag [ (v_int 1, 1) ]) (Nip.bag []));
  Alcotest.(check bool) "{{*}} matches anything" true
    (Nip.matches (Value.bag [ (v_int 1, 5) ]) (Nip.bag ~star:true []));
  Alcotest.(check bool) "null as empty relation" true
    (Nip.matches Value.Null (Nip.bag []))

let test_check_well_formed () =
  let ty =
    Vtype.relation
      [ ("city", Vtype.TString); ("nList", Vtype.relation [ ("name", Vtype.TString) ]) ]
  in
  let tuple_ty = Vtype.element ty in
  let ok p = Alcotest.(check bool) (Nip.to_string p) true (Nip.check tuple_ty p = Ok ()) in
  let bad p =
    Alcotest.(check bool) (Nip.to_string p) true
      (match Nip.check tuple_ty p with Error _ -> true | Ok () -> false)
  in
  ok (Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.some_element) ]);
  ok (Nip.tup [ ("nList", Nip.bag ~star:true [ Nip.tup [ ("name", Nip.any) ] ]) ]);
  bad (Nip.tup [ ("zip", Nip.any) ]);
  bad (Nip.tup [ ("city", Nip.int 5) ]);
  bad (Nip.tup [ ("city", Nip.pred Nrab.Expr.Gt (v_int 1)) ]);
  bad (Nip.tup [ ("nList", Nip.tup [ ("name", Nip.any) ]) ]);
  bad (Nip.bag [])

let test_is_trivial () =
  Alcotest.(check bool) "? is trivial" true (Nip.is_trivial Nip.any);
  Alcotest.(check bool) "{{?, *}} is trivial" true
    (Nip.is_trivial (Nip.bag ~star:true [ Nip.any ]));
  Alcotest.(check bool) "constant is not" false (Nip.is_trivial (Nip.int 1));
  Alcotest.(check bool) "constrained tuple is not" false
    (Nip.is_trivial (Nip.tup [ ("a", Nip.int 1) ]))

(* --- properties --- *)

let value_gen = QCheck.Gen.(
  sized @@ fix (fun self n ->
    if n <= 0 then
      oneof [ return Value.Null; map (fun i -> Value.Int i) (int_range 0 5) ]
    else
      frequency
        [
          (2, map (fun i -> Value.Int i) (int_range 0 5));
          (1, map (fun vs -> Value.bag_of_list vs) (list_size (int_range 0 4) (self (n / 2))));
        ]))

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_value_matches_itself =
  QCheck.Test.make ~name:"every primitive matches its own Prim pattern" ~count:200
    arb_value (fun v ->
      match v with
      | Value.Bag _ -> true (* Prim on bags requires exact equality; tested below *)
      | _ -> Nip.matches v (Nip.v v))

let prop_bag_matches_exact_pattern =
  QCheck.Test.make ~name:"a bag matches the pattern listing its elements" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 5) arb_value) (fun xs ->
      let b = Value.bag_of_list xs in
      let pattern = Nip.bag (List.map Nip.v (Value.expand b)) in
      Nip.matches b pattern)

let prop_star_weaker =
  QCheck.Test.make ~name:"adding * never invalidates a match" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 5) arb_value) (fun xs ->
      let b = Value.bag_of_list xs in
      let elems = List.map Nip.v (Value.expand b) in
      QCheck.assume (Nip.matches b (Nip.bag elems));
      Nip.matches b (Nip.bag ~star:true elems))

let () =
  Alcotest.run "nip"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "example 6" `Quick test_example6;
          Alcotest.test_case "example 6 (exact)" `Quick test_example6_exact_multiplicity;
          Alcotest.test_case "example 7" `Quick test_example7;
          Alcotest.test_case "example 7 (negative)" `Quick test_example7_no_match;
        ] );
      ( "placeholders",
        [
          Alcotest.test_case "instance placeholder" `Quick test_any_matches_everything;
          Alcotest.test_case "primitive equality" `Quick test_prim_equality;
          Alcotest.test_case "predicate placeholders" `Quick test_pred_placeholder;
          Alcotest.test_case "partial tuple patterns" `Quick test_tuple_partial_constraints;
        ] );
      ( "bag-assignment",
        [
          Alcotest.test_case "exact counts" `Quick test_bag_exact_counts;
          Alcotest.test_case "insufficient supply" `Quick test_bag_demands_not_coverable;
          Alcotest.test_case "assignment conflicts" `Quick test_bag_assignment_conflict;
          Alcotest.test_case "empty bags" `Quick test_empty_bag_patterns;
          Alcotest.test_case "well-formedness (Def. 3)" `Quick test_check_well_formed;
          Alcotest.test_case "triviality" `Quick test_is_trivial;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_value_matches_itself; prop_bag_matches_exact_pattern; prop_star_weaker ] );
    ]
