(* Metrics export: Prometheus text exposition format and a JSON
   snapshot of the registry.

   The registry's dotted names ("serve.sched.wait_ms") are sanitized to
   Prometheus identifiers ("serve_sched_wait_ms"); counters get the
   conventional `_total` suffix.  Histograms are exposed in cumulative
   `_bucket{le="..."}` form (only non-empty buckets — the log scale has
   1024 of them, nearly all idle) plus `_sum` and `_count`.

   Rendering takes one pass over a {!Metrics.snapshot}-style read of
   each metric; nothing here locks the registry for the duration of the
   render, so a scrape never stalls the serving path. *)

open Nested

let sanitize_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s | exception _ -> "_"

(* %g loses no precision a scrape cares about and keeps the golden test
   stable across platforms; infinities use Prometheus spellings. *)
let render_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Fmt.str "%d" (int_of_float f)
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Fmt.str "%.9g" f

let prometheus_of (registry : Metrics.t) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, m) ->
      let pname = sanitize_name name in
      match m with
      | `Counter c ->
        line "# TYPE %s_total counter" pname;
        line "%s_total %d" pname (Metrics.Counter.value c)
      | `Gauge g ->
        line "# TYPE %s gauge" pname;
        line "%s %s" pname (render_float (Metrics.Gauge.value g))
      | `Histogram h ->
        let s = Metrics.Histogram.summary h in
        line "# TYPE %s histogram" pname;
        List.iter
          (fun (le, cum) ->
            line "%s_bucket{le=\"%s\"} %d" pname (render_float le) cum)
          (Metrics.Histogram.cumulative_buckets h);
        line "%s_bucket{le=\"+Inf\"} %d" pname s.Metrics.Histogram.count;
        line "%s_sum %s" pname (render_float s.Metrics.Histogram.sum);
        line "%s_count %d" pname s.Metrics.Histogram.count)
    (Metrics.metrics registry);
  Buffer.contents buf

let prometheus () = prometheus_of Metrics.default

let summary_to_json (s : Metrics.Histogram.summary) : Json.json =
  Json.J_object
    [
      ("count", Json.J_int s.Metrics.Histogram.count);
      ("sum", Json.J_float s.Metrics.Histogram.sum);
      ("min", Json.J_float s.Metrics.Histogram.min);
      ("max", Json.J_float s.Metrics.Histogram.max);
      ("p50", Json.J_float s.Metrics.Histogram.p50);
      ("p95", Json.J_float s.Metrics.Histogram.p95);
    ]

let json_of (registry : Metrics.t) : Json.json =
  Json.J_object
    (List.map
       (fun (name, entry) ->
         ( name,
           match entry with
           | `Counter v -> Json.J_int v
           | `Gauge v -> Json.J_float v
           | `Histogram s -> summary_to_json s ))
       (Metrics.snapshot registry))

let json () = json_of Metrics.default
