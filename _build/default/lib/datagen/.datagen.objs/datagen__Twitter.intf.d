lib/datagen/twitter.mli: Nested Relation Vtype
