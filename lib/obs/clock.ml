(* Monotonic nanosecond clock.

   The wall clock ([Unix.gettimeofday]) can step backwards (NTP slew,
   VM migration); spans need timestamps that never do, or durations go
   negative and trace viewers reject the file.  We clamp: [now_ns] never
   returns less than any value it has returned before, across domains
   (the high-water mark is an [Atomic]).

   The source is swappable so tests can install a deterministic clock. *)

let default_source () = int_of_float (Unix.gettimeofday () *. 1e9)

let source = Atomic.make default_source

let set_source f = Atomic.set source f
let reset_source () = Atomic.set source default_source

let high_water = Atomic.make 0

let now_ns () =
  let t = (Atomic.get source) () in
  let rec clamp () =
    let prev = Atomic.get high_water in
    if t <= prev then prev
    else if Atomic.compare_and_set high_water prev t then t
    else clamp ()
  in
  clamp ()

let ns_to_ms ns = float_of_int ns /. 1e6
let ns_to_us ns = float_of_int ns /. 1e3
