lib/nrab/expr.ml: Fmt Nested String Value
