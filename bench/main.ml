(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (Section 6):

     fig8    runtime on DBLP scenarios D1–D5 vs dataset size   (Figure 8)
     fig9    runtime on Twitter scenarios vs dataset size      (Figure 9)
     fig10   TPC-H runtime: query vs RPnoSA vs RP              (Figure 10)
     fig11   runtime vs number of schema alternatives          (Figure 11)
     table6  crime comparison Why-Not / Conseil / RP           (Table 6, §6.4)
     table7  explanation summary per scenario                  (Table 7)
     table8  the explanation sets per approach                 (Table 8)
     bechamel  statistically robust timings (one Test.make per
               table/figure)

   Absolute numbers are not comparable to the paper's Spark cluster; the
   reproduced claims are the *shapes*: linear scaling in input size,
   bounded overhead factors over the original query, per-SA cost growth,
   and the explanation counts/contents. *)

(* Wall-clock timing goes through Obs spans (monotone-clamped clock).
   [time_span] is the drop-in for the old [time_ms]; phase-level numbers
   come straight off the pipeline result's span tree. *)
let time_span name (f : Obs.Span.t -> 'a) : 'a * float =
  let sp = Obs.Span.start name in
  let x = Fun.protect ~finally:(fun () -> Obs.Span.finish sp) (fun () -> f sp) in
  (x, Obs.Span.duration_ms sp)

let phase_header =
  String.concat "," (List.map (fun p -> p ^ "_ms") Whynot.Pipeline.phases)

let phase_cols (r : Whynot.Pipeline.result) =
  String.concat ","
    (List.map
       (fun (_, ms) -> Fmt.str "%.3f" ms)
       (Whynot.Pipeline.phase_durations_ms r))

(* Engine configuration, settable from the command line: --partitions N
   sizes the datasets, --parallel turns on the domain pool (for both
   engine partition work and pipeline SA-level concurrency). *)
let partitions = ref Engine.Exec.default_config.Engine.Exec.partitions
let parallel = ref false

let engine_config () =
  {
    Engine.Exec.partitions = !partitions;
    parallel = !parallel;
    retry = Engine.Fault.no_retry;
  }

(* Optional CSV sink: each measurement row is also appended to
   results/<target>.csv when -csv is passed, for external plotting. *)
let csv_enabled = ref false

let csv_channel : (string, out_channel) Hashtbl.t = Hashtbl.create 8

let ensure_results_dir =
  let made = ref false in
  fun () ->
    if not !made then begin
      (if not (Sys.file_exists "results") then Unix.mkdir "results" 0o755);
      made := true
    end

let csv target header row =
  if !csv_enabled then begin
    let oc =
      match Hashtbl.find_opt csv_channel target with
      | Some oc -> oc
      | None ->
        ensure_results_dir ();
        let oc = open_out (Filename.concat "results" (target ^ ".csv")) in
        output_string oc (header ^ "\n");
        Hashtbl.replace csv_channel target oc;
        oc
    in
    output_string oc (row ^ "\n")
  end

let close_csv () =
  Hashtbl.iter
    (fun _ oc ->
      flush oc;
      close_out oc)
    csv_channel;
  Hashtbl.reset csv_channel

(* Flush even when a benchmark raises or the process is cut short;
   [close_csv] is idempotent (the table is reset), so the explicit call
   at the end of [main] and this handler cannot double-close. *)
let () = at_exit close_csv

(* Optional JSON summary (--json FILE): one machine-readable record per
   measurement — scenario, scale, query/RP wall-clock, and the per-phase
   breakdown — so perf PRs can diff against a committed baseline. *)
let json_file = ref ""

type json_record = {
  jbench : string;
  jscenario : string;
  jscale : int;
  jrows : int;
  jquery_ms : float option;
  jrpnosa_ms : float option;
  jrp_ms : float;
  jphases : (string * float) list;
  jgc : (string * (float * int)) list;
      (* per-phase (bytes allocated, minor collections) *)
}

let json_records : json_record list ref = ref []

let add_json r = if !json_file <> "" then json_records := r :: !json_records

(* Records of the [serve] target — service-level numbers (cold vs warm
   latency, throughput, hit ratio) rather than pipeline phases. *)
type serve_record = {
  vscenario : string;
  vscale : int;
  vcold_ms : float;
  vwarm_ms : float;
  vspeedup : float;
  vrequests : int;
  vrps : float;
  vhits : int;
  vmisses : int;
  vhit_ratio : float;
  vburst : int;
  vcoalesced : int;
  vburst_ms : float;
}

let serve_records : serve_record list ref = ref []

let add_serve r = if !json_file <> "" then serve_records := r :: !serve_records

(* Records of the [chaos] target — fault-tolerance numbers: the cost of
   the (unarmed) injection sites and of surviving armed transient
   faults via task retries. *)
type chaos_record = {
  hscenario : string;
  hscale : int;
  hunarmed_query_ms : float;
  harmed_query_ms : float;
  hunarmed_rp_ms : float;
  harmed_rp_ms : float;
  hretries : int;
  hfaults : int;
  hidentical : bool;
}

let chaos_records : chaos_record list ref = ref []

let add_chaos r = if !json_file <> "" then chaos_records := r :: !chaos_records

(* Records of the [obs] target — telemetry overhead: the cost of a log
   call at a disabled level, the record volume and wall-clock cost of
   running a pipeline at Debug, and the metrics-export render time. *)
type obs_record = {
  oscenario : string;
  oscale : int;
  odisabled_ns : float;  (* per Log.debug call with the level off *)
  orecords_per_explain : int;  (* records one RP explain emits at Debug *)
  ooff_ms : float;  (* RP wall-clock, logging off *)
  odebug_ms : float;  (* RP wall-clock, Debug + counting sink *)
  odebug_overhead_pct : float;
  odisabled_overhead_pct : float;
      (* computed worst case: every record this explain would emit,
         charged at the disabled-call price, as %% of the off column *)
  oexport_ms : float;  (* one Prometheus render of the live registry *)
}

let obs_records : obs_record list ref = ref []

let add_obs r = if !json_file <> "" then obs_records := r :: !obs_records

(* Records of the [approx] target — budget-ladder numbers: exact RP vs
   sampled tracing vs top-k-only MSR vs the combined degradation, plus
   the honesty checks (confidence, skipped candidates, and whether the
   top-k ranking is a prefix of the exact one). *)
type approx_record = {
  xscenario : string;
  xscale : int;
  xrows : int;
  xexact_ms : float;
  xsampled_ms : float;
  xtopk_ms : float;
  xcombined_ms : float;
  xspeedup : float;  (* exact / combined *)
  xconfidence : float;  (* of the combined run *)
  xskipped : int;  (* MSR candidates pruned unevaluated (combined run) *)
  xprefix_ok : bool;  (* top-k ranking = k-prefix of the exact ranking *)
}

let approx_records : approx_record list ref = ref []

let add_approx r =
  if !json_file <> "" then approx_records := r :: !approx_records

(* Records of the [recover] target — stage-recovery numbers: restoring a
   lost shuffle partition from its barrier checkpoint (a file read) vs
   the fallback when the file is gone (replay the full upstream lineage
   through the recompute closure), plus the explanation-pipeline cost of
   running under a starvation-level spill watermark. *)
type recover_record = {
  rscenario : string;
  rscale : int;
  rrows : int;
  rckpt_ms : float;  (* restore one lost partition from its checkpoint *)
  rsrc_ms : float;  (* same restore with the file gone: full recompute *)
  rspeedup : float;  (* src / ckpt *)
  rplain_rp_ms : float;
  rspill_rp_ms : float;
  rspill_pct : float;
  rspill_batches : int;
  ridentical : bool;
}

let recover_records : recover_record list ref = ref []

let add_recover r =
  if !json_file <> "" then recover_records := r :: !recover_records

let write_json () =
  if !json_file <> "" then begin
    let oc = open_out !json_file in
    let field name v = Fmt.str "%S: %s" name v in
    let opt_ms name = function
      | None -> []
      | Some ms -> [ field name (Fmt.str "%.3f" ms) ]
    in
    let record r =
      let phases =
        Fmt.str "{%s}"
          (String.concat ", "
             (List.map (fun (p, ms) -> Fmt.str "%S: %.3f" p ms) r.jphases))
      in
      let alloc =
        Fmt.str "{%s}"
          (String.concat ", "
             (List.map (fun (p, (b, _)) -> Fmt.str "%S: %.0f" p b) r.jgc))
      in
      let minors =
        Fmt.str "{%s}"
          (String.concat ", "
             (List.map (fun (p, (_, m)) -> Fmt.str "%S: %d" p m) r.jgc))
      in
      Fmt.str "    {%s}"
        (String.concat ", "
           ([
              field "bench" (Fmt.str "%S" r.jbench);
              field "scenario" (Fmt.str "%S" r.jscenario);
              field "scale" (string_of_int r.jscale);
              field "rows" (string_of_int r.jrows);
            ]
           @ opt_ms "query_ms" r.jquery_ms
           @ opt_ms "rpnosa_ms" r.jrpnosa_ms
           @ [
               field "rp_ms" (Fmt.str "%.3f" r.jrp_ms);
               field "phases" phases;
               field "alloc_bytes" alloc;
               field "minor_collections" minors;
             ]))
    in
    (* provenance: enough to tell two committed baselines apart *)
    let git_commit =
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "unknown" in
        (match Unix.close_process_in ic with
        | Unix.WEXITED 0 -> line
        | _ -> "unknown")
      with _ -> "unknown"
    in
    let hostname = try Unix.gethostname () with _ -> "unknown" in
    output_string oc
      (Fmt.str
         "{\n\
         \  \"meta\": {\"git_commit\": %S, \"hostname\": %S, \"ocaml\": %S, \
          \"word_size\": %d, \"row_engine\": %b},\n"
         git_commit hostname Sys.ocaml_version Sys.word_size
         (Engine.Columnar.row_engine ()));
    output_string oc
      (Fmt.str "  \"config\": {\"partitions\": %d, \"parallel\": %b},\n"
         !partitions !parallel);
    output_string oc "  \"records\": [\n";
    output_string oc
      (String.concat ",\n" (List.rev_map record !json_records));
    output_string oc "\n  ]";
    if !serve_records <> [] then begin
      let serve_rec r =
        Fmt.str
          "    {\"scenario\": %S, \"scale\": %d, \"cold_ms\": %.3f, \
           \"warm_ms\": %.4f, \"speedup\": %.1f, \"requests\": %d, \
           \"requests_per_sec\": %.1f, \"hits\": %d, \"misses\": %d, \
           \"hit_ratio\": %.3f, \"burst\": %d, \"coalesced\": %d, \
           \"burst_ms\": %.3f}"
          r.vscenario r.vscale r.vcold_ms r.vwarm_ms r.vspeedup r.vrequests
          r.vrps r.vhits r.vmisses r.vhit_ratio r.vburst r.vcoalesced
          r.vburst_ms
      in
      output_string oc ",\n  \"serve\": [\n";
      output_string oc
        (String.concat ",\n" (List.rev_map serve_rec !serve_records));
      output_string oc "\n  ]"
    end;
    if !obs_records <> [] then begin
      let obs_rec r =
        Fmt.str
          "    {\"scenario\": %S, \"scale\": %d, \"disabled_ns\": %.2f, \
           \"records_per_explain\": %d, \"off_ms\": %.3f, \"debug_ms\": %.3f, \
           \"debug_overhead_pct\": %.2f, \"disabled_overhead_pct\": %.4f, \
           \"export_ms\": %.4f}"
          r.oscenario r.oscale r.odisabled_ns r.orecords_per_explain r.ooff_ms
          r.odebug_ms r.odebug_overhead_pct r.odisabled_overhead_pct
          r.oexport_ms
      in
      output_string oc ",\n  \"obs\": [\n";
      output_string oc
        (String.concat ",\n" (List.rev_map obs_rec !obs_records));
      output_string oc "\n  ]"
    end;
    if !approx_records <> [] then begin
      let approx_rec r =
        Fmt.str
          "    {\"scenario\": %S, \"scale\": %d, \"rows\": %d, \
           \"exact_ms\": %.3f, \"sampled_ms\": %.3f, \"topk_ms\": %.3f, \
           \"combined_ms\": %.3f, \"speedup\": %.2f, \"confidence\": %.4f, \
           \"skipped\": %d, \"prefix_ok\": %b}"
          r.xscenario r.xscale r.xrows r.xexact_ms r.xsampled_ms r.xtopk_ms
          r.xcombined_ms r.xspeedup r.xconfidence r.xskipped r.xprefix_ok
      in
      output_string oc ",\n  \"approx\": [\n";
      output_string oc
        (String.concat ",\n" (List.rev_map approx_rec !approx_records));
      output_string oc "\n  ]"
    end;
    if !recover_records <> [] then begin
      let recover_rec r =
        Fmt.str
          "    {\"scenario\": %S, \"scale\": %d, \"rows\": %d, \
           \"checkpoint_restore_ms\": %.3f, \"source_recompute_ms\": %.3f, \
           \"speedup\": %.2f, \"plain_rp_ms\": %.3f, \"spill_rp_ms\": %.3f, \
           \"spill_overhead_pct\": %.2f, \"spill_batches\": %d, \
           \"identical\": %b}"
          r.rscenario r.rscale r.rrows r.rckpt_ms r.rsrc_ms r.rspeedup
          r.rplain_rp_ms r.rspill_rp_ms r.rspill_pct r.rspill_batches
          r.ridentical
      in
      output_string oc ",\n  \"recover\": [\n";
      output_string oc
        (String.concat ",\n" (List.rev_map recover_rec !recover_records));
      output_string oc "\n  ]"
    end;
    if !chaos_records <> [] then begin
      let chaos_rec r =
        Fmt.str
          "    {\"scenario\": %S, \"scale\": %d, \"unarmed_query_ms\": %.3f, \
           \"armed_query_ms\": %.3f, \"unarmed_rp_ms\": %.3f, \
           \"armed_rp_ms\": %.3f, \"retries\": %d, \"faults\": %d, \
           \"identical\": %b}"
          r.hscenario r.hscale r.hunarmed_query_ms r.harmed_query_ms
          r.hunarmed_rp_ms r.harmed_rp_ms r.hretries r.hfaults r.hidentical
      in
      output_string oc ",\n  \"chaos\": [\n";
      output_string oc
        (String.concat ",\n" (List.rev_map chaos_rec !chaos_records));
      output_string oc "\n  ]"
    end;
    output_string oc "\n}\n";
    close_out oc;
    Fmt.pr "@.json summary written to %s (%d records)@." !json_file
      (List.length !json_records + List.length !serve_records
      + List.length !chaos_records + List.length !obs_records
      + List.length !approx_records + List.length !recover_records)
  end

let scenario name = Option.get (Scenarios.Registry.find name)

let instance ?(scale = 1) s = s.Scenarios.Scenario.make ~scale ()

let run_rp inst =
  Whynot.Pipeline.explain ~parallel:!parallel
    ~alternatives:inst.Scenarios.Scenario.alternatives
    inst.Scenarios.Scenario.question

let run_rpnosa inst =
  Whynot.Pipeline.explain ~parallel:!parallel ~use_sas:false
    inst.Scenarios.Scenario.question

let run_query ?parent inst =
  let phi = inst.Scenarios.Scenario.question in
  Engine.Exec.run ~config:(engine_config ()) ?parent phi.Whynot.Question.db
    phi.Whynot.Question.query

let db_rows (inst : Scenarios.Scenario.instance) =
  let phi = inst.Scenarios.Scenario.question in
  List.fold_left
    (fun acc (_, rel) -> acc + Nested.Relation.cardinal rel)
    0
    (Nested.Relation.Db.tables phi.Whynot.Question.db)

(* --- Figures 8 and 9: runtime vs dataset size ---------------------------- *)

let fig_scaling ~title ~csv_target ~scenarios ~scales () =
  Fmt.pr "@.== %s ==@." title;
  Fmt.pr "%-6s %-6s %-8s %-10s %-10s %-8s@." "scen" "scale" "rows" "query ms"
    "RP ms" "factor";
  List.iter
    (fun name ->
      let s = scenario name in
      List.iter
        (fun scale ->
          let inst = instance ~scale s in
          (* Settle the heap first so one measurement does not pay for
             garbage another produced; query latency is min-of-3 (the
             first rep also charges any one-time arena conversion). *)
          Gc.full_major ();
          let q_ms =
            List.fold_left
              (fun acc _ ->
                let _, ms =
                  time_span "bench.query" (fun sp -> run_query ~parent:sp inst)
                in
                Float.min acc ms)
              Float.infinity [ 1; 2; 3; 4; 5 ]
          in
          Gc.full_major ();
          (* Best-of-3 for the pipeline too: the sub-millisecond phases
             are otherwise dominated by timer/GC noise.  Totals and
             per-phase figures each take the minimum across reps. *)
          let reps =
            List.map
              (fun _ ->
                Gc.full_major ();
                run_rp inst)
              [ 1; 2; 3; 4; 5 ]
          in
          let rp =
            List.fold_left
              (fun b r ->
                if
                  Obs.Span.duration_ms r.Whynot.Pipeline.span
                  < Obs.Span.duration_ms b.Whynot.Pipeline.span
                then r
                else b)
              (List.hd reps) (List.tl reps)
          in
          let rp_ms = Obs.Span.duration_ms rp.Whynot.Pipeline.span in
          let phase_mins =
            List.map
              (fun (p, ms) ->
                ( p,
                  List.fold_left
                    (fun acc r ->
                      match
                        List.assoc_opt p
                          (Whynot.Pipeline.phase_durations_ms r)
                      with
                      | Some m -> Float.min acc m
                      | None -> acc)
                    ms (List.tl reps) ))
              (Whynot.Pipeline.phase_durations_ms (List.hd reps))
          in
          Fmt.pr "%-6s %-6d %-8d %-10.2f %-10.2f %-8.1f@." name scale
            (db_rows inst) q_ms rp_ms
            (rp_ms /. Float.max q_ms 0.001);
          csv csv_target
            ("scenario,scale,rows,query_ms,rp_ms," ^ phase_header)
            (Fmt.str "%s,%d,%d,%.3f,%.3f,%s" name scale (db_rows inst) q_ms
               rp_ms
               (String.concat ","
                  (List.map (fun (_, ms) -> Fmt.str "%.3f" ms) phase_mins)));
          add_json
            {
              jbench = csv_target;
              jscenario = name;
              jscale = scale;
              jrows = db_rows inst;
              jquery_ms = Some q_ms;
              jrpnosa_ms = None;
              jrp_ms = rp_ms;
              jphases = phase_mins;
              jgc = Whynot.Pipeline.phase_gc rp;
            })
        scales)
    scenarios

let fig8 ?(scales = [ 1; 2; 4; 8; 16; 32 ]) () =
  fig_scaling ~title:"Figure 8: DBLP runtime vs dataset size" ~csv_target:"fig8"
    ~scenarios:[ "D1"; "D2"; "D3"; "D4"; "D5" ]
    ~scales ()

let fig9 ?(scales = [ 1; 2; 4; 8; 16; 32 ]) () =
  fig_scaling ~title:"Figure 9: Twitter runtime vs dataset size" ~csv_target:"fig9"
    ~scenarios:[ "T1"; "T2"; "T3"; "T4"; "TASD" ]
    ~scales ()

(* --- Figure 10: TPC-H query vs RPnoSA vs RP ------------------------------ *)

let fig10 ?(scale = 2) () =
  Fmt.pr "@.== Figure 10: TPC-H runtime (scale %d) ==@." scale;
  Fmt.pr "%-6s %-10s %-11s %-9s %-10s %-8s@." "scen" "query ms" "RPnoSA ms"
    "RP ms" "f(noSA)" "f(RP)";
  List.iter
    (fun name ->
      let inst = instance ~scale (scenario name) in
      let _, q_ms = time_span "bench.query" (fun sp -> run_query ~parent:sp inst) in
      let rpnosa = run_rpnosa inst in
      let nosa_ms = Obs.Span.duration_ms rpnosa.Whynot.Pipeline.span in
      let rp = run_rp inst in
      let rp_ms = Obs.Span.duration_ms rp.Whynot.Pipeline.span in
      Fmt.pr "%-6s %-10.2f %-11.2f %-9.2f %-10.1f %-8.1f@." name q_ms nosa_ms
        rp_ms
        (nosa_ms /. Float.max q_ms 0.001)
        (rp_ms /. Float.max q_ms 0.001);
      csv "fig10"
        ("scenario,query_ms,rpnosa_ms,rp_ms," ^ phase_header)
        (Fmt.str "%s,%.3f,%.3f,%.3f,%s" name q_ms nosa_ms rp_ms (phase_cols rp));
      add_json
        {
          jbench = "fig10";
          jscenario = name;
          jscale = scale;
          jrows = db_rows inst;
          jquery_ms = Some q_ms;
          jrpnosa_ms = Some nosa_ms;
          jrp_ms = rp_ms;
          jphases = Whynot.Pipeline.phase_durations_ms rp;
          jgc = Whynot.Pipeline.phase_gc rp;
        })
    [ "Q1"; "Q3"; "Q4"; "Q6"; "Q10"; "Q13" ]

(* --- Figure 11: runtime vs number of schema alternatives ----------------- *)

(* Widened alternative groups so that the SA count can actually grow (the
   paper's TPC-H scenarios reach 12 SAs via three attribute families). *)
let widened_alternatives name (inst : Scenarios.Scenario.instance) =
  match name with
  | "Q3" ->
    (* the paper's three TPC-H attribute families: discount/tax, the
       three lineitem dates, and the two order priorities — 2×3×2 = 12
       schema alternatives *)
    inst.Scenarios.Scenario.alternatives
    @ [
        ( "nested_orders",
          [
            [ "o_lineitems"; "l_commitdate" ];
            [ "o_lineitems"; "l_shipdate" ];
            [ "o_lineitems"; "l_receiptdate" ];
          ] );
        ("nested_orders", [ [ "o_shippriority" ]; [ "o_orderpriority" ] ]);
      ]
  | _ -> inst.Scenarios.Scenario.alternatives

let fig11 ?(scale = 2) () =
  Fmt.pr "@.== Figure 11: runtime vs number of schema alternatives (scale %d) ==@."
    scale;
  Fmt.pr "%-6s %-6s %-8s %-10s@." "scen" "maxSA" "used" "RP ms";
  List.iter
    (fun name ->
      let inst = instance ~scale (scenario name) in
      let alternatives = widened_alternatives name inst in
      List.iter
        (fun max_sas ->
          let result =
            Whynot.Pipeline.explain ~parallel:!parallel ~max_sas ~alternatives
              inst.Scenarios.Scenario.question
          in
          let ms = Obs.Span.duration_ms result.Whynot.Pipeline.span in
          Fmt.pr "%-6s %-6d %-8d %-10.2f@." name max_sas
            (List.length result.Whynot.Pipeline.sas)
            ms;
          csv "fig11"
            ("scenario,max_sas,used_sas,rp_ms," ^ phase_header)
            (Fmt.str "%s,%d,%d,%.3f,%s" name max_sas
               (List.length result.Whynot.Pipeline.sas) ms (phase_cols result));
          add_json
            {
              jbench = "fig11";
              jscenario = Fmt.str "%s/%dsa" name max_sas;
              jscale = scale;
              jrows = db_rows inst;
              jquery_ms = None;
              jrpnosa_ms = None;
              jrp_ms = ms;
              jphases = Whynot.Pipeline.phase_durations_ms result;
              jgc = Whynot.Pipeline.phase_gc result;
            })
        (if name = "Q3" then [ 1; 2; 4; 8; 12 ] else [ 1; 2; 3; 4 ]))
    [ "TASD"; "D1"; "T3"; "D4"; "Q3" ]

(* --- Table 3: operators that can become part of explanations -------------- *)

let table3 () =
  Fmt.pr "@.== Table 3: explainable operator types per algebra and formalism ==@.";
  Fmt.pr "%-8s %-22s %s@." "algebra" "lineage-based" "reparameterization-based";
  List.iter
    (fun fragment ->
      let render formalism =
        String.concat ","
          (List.map Nrab.Query.op_type_to_string
             (Nrab.Fragment.explainable_op_types formalism fragment))
      in
      Fmt.pr "%-8s %-22s %s@."
        (Nrab.Fragment.to_string fragment)
        (render Nrab.Fragment.Lineage_based)
        (render Nrab.Fragment.Reparameterization_based))
    [ Nrab.Fragment.Spc; Nrab.Fragment.Spc_plus; Nrab.Fragment.Nrab ];
  (* empirical cross-check over all scenarios: the operator types each
     approach actually blames stay within its Table 3 row *)
  let found approach_sets q =
    List.sort_uniq compare
      (List.concat_map
         (fun set ->
           List.filter_map
             (fun id ->
               Option.map
                 (fun (op : Nrab.Query.t) -> Nrab.Query.op_type op.Nrab.Query.node)
                 (Nrab.Query.find_op q id))
             set)
         approach_sets)
  in
  let violations = ref 0 in
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let inst = instance s in
      let phi = inst.Scenarios.Scenario.question in
      let q = phi.Whynot.Question.query in
      let fragment = Nrab.Fragment.classify q in
      let wn_types =
        found (List.map Baselines.Explanation_set.op_list (Baselines.Wnpp.explanations phi)) q
      in
      let rp_types = found (Whynot.Pipeline.explanation_sets (run_rp inst)) q in
      List.iter
        (fun ty ->
          if not (Nrab.Fragment.explainable Nrab.Fragment.Lineage_based fragment ty)
          then incr violations)
        wn_types;
      List.iter
        (fun ty ->
          if
            not
              (Nrab.Fragment.explainable Nrab.Fragment.Reparameterization_based
                 fragment ty)
          then incr violations)
        rp_types)
    Scenarios.Registry.all;
  Fmt.pr "empirical check over all scenarios: %d violations@." !violations

(* --- Table 6: crime comparison ------------------------------------------- *)

let table6 () =
  Fmt.pr "@.== Table 6 / Section 6.4: crime scenarios ==@.";
  List.iter
    (fun name ->
      let s = scenario name in
      let inst = instance s in
      let phi = inst.Scenarios.Scenario.question in
      let q = phi.Whynot.Question.query in
      let fmt_base es =
        if es = [] then "(none)"
        else String.concat ", " (List.map Baselines.Explanation_set.to_string es)
      in
      let rp = run_rp inst in
      let fmt_rp =
        if rp.Whynot.Pipeline.explanations = [] then "(none)"
        else
          String.concat ", "
            (List.map (Whynot.Explanation.to_string_with_query q)
               rp.Whynot.Pipeline.explanations)
      in
      Fmt.pr "@.%s: %s@." name s.Scenarios.Scenario.description;
      Fmt.pr "  Why-Not: %s@." (fmt_base (Baselines.Wnpp.explanations phi));
      Fmt.pr "  Conseil: %s@." (fmt_base (Baselines.Conseil.explanations phi));
      Fmt.pr "  RP:      %s@." fmt_rp)
    [ "C1"; "C2"; "C3" ]

(* --- Tables 7 and 8: explanation summary and contents -------------------- *)

let gold_position (inst : Scenarios.Scenario.instance)
    (rp : Whynot.Pipeline.result) : string =
  match inst.Scenarios.Scenario.gold with
  | None -> "-"
  | Some gold ->
    let sets = List.map (List.sort compare) (Whynot.Pipeline.explanation_sets rp) in
    let pos g =
      let g = List.sort compare g in
      let rec go i = function
        | [] -> None
        | s :: rest -> if s = g then Some i else go (i + 1) rest
      in
      go 1 sets
    in
    let positions = List.filter_map pos gold in
    if positions = [] then "miss"
    else String.concat "," (List.map string_of_int positions)

(* Operator-type flags per the paper's legend: ○ found by all
   approaches, ◐ found only by RPnoSA and RP, ● found only by RP. *)
let op_type_flags (q : Nrab.Query.t) ~wnpp_sets ~rpnosa_sets ~rp_sets : string =
  let types_of sets =
    List.sort_uniq compare
      (List.concat_map
         (fun set ->
           List.filter_map
             (fun id ->
               Option.map
                 (fun (op : Nrab.Query.t) -> Nrab.Query.op_type op.Nrab.Query.node)
                 (Nrab.Query.find_op q id))
             set)
         sets)
  in
  let w = types_of wnpp_sets
  and n = types_of rpnosa_sets
  and r = types_of rp_sets in
  let flag ty =
    let name = Nrab.Query.op_type_to_string ty in
    if List.mem ty w && List.mem ty r then Some (name ^ "○")
    else if List.mem ty w then Some (name ^ "✗") (* WN++-only: incorrect *)
    else if List.mem ty n then Some (name ^ "◐")
    else if List.mem ty r then Some (name ^ "●")
    else None
  in
  String.concat " "
    (List.filter_map flag
       Nrab.Query.
         [ Op_select; Op_project; Op_join; Op_flatten; Op_nest; Op_agg ])

let table7 () =
  Fmt.pr "@.== Table 7: number of explanations per scenario and approach ==@.";
  Fmt.pr "   (legend: ○ found by all, ◐ only RPnoSA+RP, ● only RP, ✗ only WN++ [incorrect])@.";
  Fmt.pr "%-6s %-16s %-6s %-8s %-6s %-7s %-18s@." "scen" "operators" "WN++"
    "RPnoSA" "RP" "gold@" "found-by";
  let totals = ref (0, 0, 0) in
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let inst = instance s in
      let phi = inst.Scenarios.Scenario.question in
      let q = phi.Whynot.Question.query in
      let rp = run_rp inst in
      let rpnosa = run_rpnosa inst in
      let wnpp = Baselines.Wnpp.explanations phi in
      let n1 = List.length wnpp in
      let n2 = List.length rpnosa.Whynot.Pipeline.explanations in
      let n3 = List.length rp.Whynot.Pipeline.explanations in
      let a, b, c = !totals in
      totals := (a + n1, b + n2, c + n3);
      let flags =
        op_type_flags q
          ~wnpp_sets:(List.map Baselines.Explanation_set.op_list wnpp)
          ~rpnosa_sets:(Whynot.Pipeline.explanation_sets rpnosa)
          ~rp_sets:(Whynot.Pipeline.explanation_sets rp)
      in
      Fmt.pr "%-6s %-16s %-6d %-8d %-6d %-7s %-18s@." s.Scenarios.Scenario.name
        s.Scenarios.Scenario.operators n1 n2 n3 (gold_position inst rp) flags)
    Scenarios.Registry.all;
  let a, b, c = !totals in
  Fmt.pr "%-6s %-16s %-6d %-8d %-6d@." "TOTAL" "" a b c

let table8 () =
  Fmt.pr "@.== Table 8: explanations per scenario ==@.";
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let inst = instance s in
      let phi = inst.Scenarios.Scenario.question in
      let q = phi.Whynot.Question.query in
      let rp = run_rp inst in
      let rpnosa = run_rpnosa inst in
      let wnpp = Baselines.Wnpp.explanations phi in
      let fmt_sets sets =
        if sets = [] then "(none)" else String.concat ", " sets
      in
      Fmt.pr "@.%s:@." s.Scenarios.Scenario.name;
      Fmt.pr "  WN++:    %s@."
        (fmt_sets (List.map Baselines.Explanation_set.to_string wnpp));
      Fmt.pr "  RPnoSA:  %s@."
        (fmt_sets
           (List.map (Whynot.Explanation.to_string_with_query q)
              rpnosa.Whynot.Pipeline.explanations));
      Fmt.pr "  RP:      %s@."
        (fmt_sets
           (List.map (Whynot.Explanation.to_string_with_query q)
              rp.Whynot.Pipeline.explanations)))
    Scenarios.Registry.all

(* --- Ablation: the two novel techniques of the paper ----------------------

   RP vs RPnoSA isolates the schema-alternative technique; re-validation
   on/off isolates the per-operator consistency checks.  Without
   re-validation the pipeline behaves like prior lineage-based work and
   admits false positives (tuples incorrectly identified as compatible —
   Section 1's second technical contribution). *)

let ablation () =
  Fmt.pr "@.== Ablation: schema alternatives and re-validation ==@.";
  Fmt.pr "%-6s %-14s %-14s %-10s@." "scen" "RP" "no-revalidate" "spurious";
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let inst = instance s in
      let phi = inst.Scenarios.Scenario.question in
      let with_rv = run_rp inst in
      let without_rv =
        Whynot.Pipeline.explain ~revalidate:false
          ~alternatives:inst.Scenarios.Scenario.alternatives phi
      in
      let sets r =
        List.map (List.sort compare) (Whynot.Pipeline.explanation_sets r)
      in
      let spurious =
        List.filter
          (fun set -> not (List.mem set (sets with_rv)))
          (sets without_rv)
      in
      Fmt.pr "%-6s %-14d %-14d %-10d@." s.Scenarios.Scenario.name
        (List.length with_rv.Whynot.Pipeline.explanations)
        (List.length without_rv.Whynot.Pipeline.explanations)
        (List.length spurious))
    Scenarios.Registry.all

(* --- Serve: service-level latency, cache effectiveness, throughput ------- *)

let now_ms () = float_of_int (Obs.Clock.now_ns ()) /. 1e6

(* Cold = the first explain of a freshly created server (full pipeline:
   alternatives, backtrace, tracing, MSR).  Warm = the same request again
   (an explanation-cache lookup; the payload is reused, not recomputed).
   Throughput pushes warm requests through the full wire path —
   [handle_line] parses the request and serializes the response, so the
   req/s number includes the JSON codec, not just the lookup. *)
let bench_serve ?(scale = 1) () =
  Fmt.pr "@.== Serve: explanation service (scale %d) ==@." scale;
  Fmt.pr "%-6s %-10s %-10s %-9s %-10s %-7s %-9s %-9s@." "scen" "cold ms"
    "warm ms" "speedup" "req/s" "hit%" "coal" "burst ms";
  List.iter
    (fun name ->
      let srv =
        Serve.Server.create
          ~config:{ Serve.Server.default_config with timings = false }
          ()
      in
      (match
         Serve.Server.handle_request srv
           (Serve.Protocol.Register
              { dataset = name; scale; seed = 0; refresh = false })
       with
      | Serve.Protocol.Registered _ -> ()
      | r ->
        failwith
          (Fmt.str "serve bench: cannot register %s: %s" name
             (Serve.Protocol.response_to_string r)));
      let explain () =
        match
          Serve.Server.handle_request srv
            (Serve.Protocol.Explain
               {
                 dataset = name;
                 scale;
                 seed = 0;
                 query = None;
                 query_name = None;
                 pattern = None;
                 options = Serve.Protocol.default_options;
                 deadline_ms = None;
                 budget_ms = None;
               })
        with
        | Serve.Protocol.Explained { cache; _ } -> cache
        | r ->
          failwith
            (Fmt.str "serve bench: explain %s failed: %s" name
               (Serve.Protocol.response_to_string r))
      in
      let timed f =
        let t0 = now_ms () in
        let r = f () in
        (r, now_ms () -. t0)
      in
      let first, cold_ms = timed explain in
      assert (first = `Miss);
      let reps = 50 in
      let warm = Array.init reps (fun _ -> snd (timed explain)) in
      Array.sort compare warm;
      let warm_ms = warm.(reps / 2) in
      (* throughput through the wire path (parse + dispatch + serialize) *)
      let n = 200 in
      let line =
        Fmt.str "{\"op\": \"explain\", \"dataset\": %S, \"scale\": %d}" name
          scale
      in
      let t0 = now_ms () in
      for _ = 1 to n do
        ignore (Serve.Server.handle_line srv line : string * bool)
      done;
      let elapsed_ms = now_ms () -. t0 in
      let rps = float_of_int n /. Float.max (elapsed_ms /. 1000.) 1e-9 in
      let hits, misses =
        match Serve.Server.handle_request srv Serve.Protocol.Stats with
        | Serve.Protocol.Stats_reply sections -> (
          match List.assoc_opt "cache" sections with
          | Some (Nested.Json.J_object fields) ->
            let int k =
              match List.assoc_opt k fields with
              | Some (Nested.Json.J_int v) -> v
              | _ -> 0
            in
            (int "hits", int "misses")
          | _ -> (0, 0))
        | _ -> (0, 0)
      in
      let hit_ratio =
        float_of_int hits /. Float.max (float_of_int (hits + misses)) 1.
      in
      let speedup = cold_ms /. Float.max warm_ms 1e-6 in
      (* coalescing burst: invalidate the cached payload (refresh bumps
         the dataset version), then fire identical explains concurrently —
         single-flight answers all of them with ONE pipeline execution,
         so the burst costs about one cold explain, not [burst] of them *)
      ignore
        (Serve.Server.handle_request srv
           (Serve.Protocol.Register
              { dataset = name; scale; seed = 0; refresh = true })
          : Serve.Protocol.response);
      let burst = 8 in
      let labels = Array.make burst `Miss in
      (* park all threads on a gate and release them together, so the
         requests actually overlap instead of serializing on spawn cost *)
      let gate = Mutex.create () and go = Condition.create () in
      let released = ref false in
      let threads =
        Array.init burst (fun i ->
            Thread.create
              (fun () ->
                Mutex.lock gate;
                while not !released do
                  Condition.wait go gate
                done;
                Mutex.unlock gate;
                labels.(i) <- explain ())
              ())
      in
      Unix.sleepf 0.01;
      let t0 = now_ms () in
      Mutex.lock gate;
      released := true;
      Condition.broadcast go;
      Mutex.unlock gate;
      Array.iter Thread.join threads;
      let burst_ms = now_ms () -. t0 in
      let coalesced =
        Array.fold_left
          (fun acc l -> match l with `Coalesced -> acc + 1 | _ -> acc)
          0 labels
      in
      Fmt.pr "%-6s %-10.2f %-10.4f %-9.1f %-10.0f %-7.1f %d/%-7d %-9.2f@."
        name cold_ms warm_ms speedup rps (100. *. hit_ratio) coalesced burst
        burst_ms;
      csv "serve"
        "scenario,scale,cold_ms,warm_ms,speedup,requests,requests_per_sec,hits,misses,hit_ratio,burst,coalesced,burst_ms"
        (Fmt.str "%s,%d,%.3f,%.4f,%.1f,%d,%.1f,%d,%d,%.3f,%d,%d,%.3f" name
           scale cold_ms warm_ms speedup n rps hits misses hit_ratio burst
           coalesced burst_ms);
      add_serve
        {
          vscenario = name;
          vscale = scale;
          vcold_ms = cold_ms;
          vwarm_ms = warm_ms;
          vspeedup = speedup;
          vrequests = n;
          vrps = rps;
          vhits = hits;
          vmisses = misses;
          vhit_ratio = hit_ratio;
          vburst = burst;
          vcoalesced = coalesced;
          vburst_ms = burst_ms;
        })
    [ "RE"; "D1"; "T2"; "Q3" ]

(* --- Chaos: fault-injection overhead and retry recovery -------------------

   Two questions, two columns per scenario:
   - unarmed: what do the injection sites cost when nothing is armed?
     (one atomic load per site consultation — this column should match
     the plain engine/pipeline numbers of the other targets);
   - armed: with a deterministic transient fault on ~5%% of task
     attempts (Flaky, period 20) and a retry budget, runs must still
     complete, produce identical results, and the overhead is the
     recomputed attempts.  Backoff is zeroed so the column measures
     recomputation, not sleeping. *)

let bench_chaos ?(scale = 2) () =
  Fmt.pr "@.== Chaos: unarmed-site overhead and armed-retry recovery (scale %d) ==@."
    scale;
  Fmt.pr "%-6s %-12s %-12s %-12s %-12s %-8s %-7s %-9s@." "scen" "query ms"
    "query+chaos" "RP ms" "RP+chaos" "retries" "faults" "identical";
  let chaos_exn = Engine.Fault.Transient (Failure "chaos: injected") in
  let retry = Engine.Fault.retries ~base_backoff_ms:0.0 ~max_backoff_ms:0.0 3 in
  let reps = 5 in
  let median f =
    (* first call outside the timed reps warms caches (and, armed,
       checks the run survives); then the median of [reps] timings *)
    let r0 = f () in
    let times = Array.init reps (fun _ -> snd (time_span "bench.chaos" (fun _ -> f ()))) in
    Array.sort compare times;
    (r0, times.(reps / 2))
  in
  let retries_c = Obs.Metrics.counter "engine.task.retries" in
  List.iter
    (fun name ->
      let inst = instance ~scale (scenario name) in
      let phi = inst.Scenarios.Scenario.question in
      let run_query_with cfg () =
        fst (Engine.Exec.run ~config:cfg phi.Whynot.Question.db phi.Whynot.Question.query)
      in
      let run_rp_with ~retry () =
        Whynot.Pipeline.explain ~parallel:!parallel ~retry
          ~alternatives:inst.Scenarios.Scenario.alternatives phi
      in
      Obs.Faultinject.reset ();
      let plain_rel, unarmed_q = median (run_query_with (engine_config ())) in
      let plain_rp, unarmed_rp =
        median (run_rp_with ~retry:Engine.Fault.no_retry)
      in
      let retries0 = Obs.Metrics.Counter.value retries_c in
      Obs.Faultinject.arm "engine.partition"
        (Obs.Faultinject.Flaky { period = 20; exn_ = chaos_exn });
      let armed_rel, armed_q =
        median (run_query_with { (engine_config ()) with Engine.Exec.retry })
      in
      Obs.Faultinject.disarm "engine.partition";
      Obs.Faultinject.arm "tracing.relaxed"
        (Obs.Faultinject.Flaky { period = 2; exn_ = chaos_exn });
      let armed_rp, armed_rp_ms = median (run_rp_with ~retry) in
      let faults =
        Obs.Faultinject.fired "engine.partition"
        + Obs.Faultinject.fired "tracing.relaxed"
      in
      Obs.Faultinject.reset ();
      let retries = Obs.Metrics.Counter.value retries_c - retries0 in
      let identical =
        Nested.Value.compare (Nested.Relation.data plain_rel)
          (Nested.Relation.data armed_rel)
        = 0
        && Whynot.Pipeline.explanation_sets plain_rp
           = Whynot.Pipeline.explanation_sets armed_rp
      in
      Fmt.pr "%-6s %-12.3f %-12.3f %-12.3f %-12.3f %-8d %-7d %-9b@." name
        unarmed_q armed_q unarmed_rp armed_rp_ms retries faults identical;
      csv "chaos"
        "scenario,scale,unarmed_query_ms,armed_query_ms,unarmed_rp_ms,armed_rp_ms,retries,faults,identical"
        (Fmt.str "%s,%d,%.3f,%.3f,%.3f,%.3f,%d,%d,%b" name scale unarmed_q
           armed_q unarmed_rp armed_rp_ms retries faults identical);
      add_chaos
        {
          hscenario = name;
          hscale = scale;
          hunarmed_query_ms = unarmed_q;
          harmed_query_ms = armed_q;
          hunarmed_rp_ms = unarmed_rp;
          harmed_rp_ms = armed_rp_ms;
          hretries = retries;
          hfaults = faults;
          hidentical = identical;
        })
    [ "D1"; "T2"; "Q3" ]

(* --- Obs: telemetry overhead ----------------------------------------------

   Three questions:
   - what does a [Log.debug] call cost when Debug is disabled?  (the
     hot-path gate is one atomic load; the field thunk is never
     evaluated) — measured as ns/call over a tight loop;
   - what does running the pipeline at Debug cost vs logging off?  (the
     fig8 RP column, timed both ways, plus the record volume per
     explain);
   - what does one Prometheus render of the live registry cost?

   The headline acceptance number is [disabled_overhead_pct]: every
   record an explain would emit, charged at the disabled-call price, as
   a percentage of the logging-off RP time — the overhead the
   instrumentation adds to a server running at the default Info level.
   Gated like chaos (never runs implicitly): it flips the process-global
   log level and sink set mid-run. *)

let bench_obs ?(scale = 4) () =
  Fmt.pr "@.== Obs: logging and export overhead (scale %d) ==@." scale;
  Fmt.pr "%-6s %-12s %-9s %-10s %-10s %-10s %-12s %-10s@." "scen"
    "disabled ns" "records" "off ms" "debug ms" "debug %" "disabled %"
    "export ms";
  let saved_level = Obs.Log.level () in
  let reps = 5 in
  let median_ms f =
    ignore (f ());
    let times =
      Array.init reps (fun _ -> snd (time_span "bench.obs" (fun _ -> f ())))
    in
    Array.sort compare times;
    times.(reps / 2)
  in
  (* disabled-call price: one atomic load, thunk never evaluated *)
  Obs.Log.set_level None;
  let n = 2_000_000 in
  let t0 = Obs.Clock.now_ns () in
  for i = 1 to n do
    Obs.Log.debug "bench.obs.noop" (fun () -> [ Obs.Log.int "i" i ])
  done;
  let disabled_ns =
    float_of_int (Obs.Clock.now_ns () - t0) /. float_of_int n
  in
  let count = ref 0 in
  Obs.Log.add_sink "bench.obs.count" (fun _ -> incr count);
  List.iter
    (fun name ->
      let inst = instance ~scale (scenario name) in
      Obs.Log.set_level None;
      let off_ms = median_ms (fun () -> run_rp inst) in
      Obs.Log.set_level (Some Obs.Log.Debug);
      let debug_ms = median_ms (fun () -> run_rp inst) in
      count := 0;
      ignore (run_rp inst);
      let records = !count in
      Obs.Log.set_level None;
      let export_ms =
        median_ms (fun () -> ignore (Obs.Export.prometheus () : string))
      in
      let debug_pct = 100. *. (debug_ms -. off_ms) /. Float.max off_ms 1e-9 in
      let disabled_pct =
        100. *. (float_of_int records *. disabled_ns)
        /. Float.max (off_ms *. 1e6) 1e-9
      in
      Fmt.pr "%-6s %-12.2f %-9d %-10.3f %-10.3f %-10.2f %-12.4f %-10.4f@."
        name disabled_ns records off_ms debug_ms debug_pct disabled_pct
        export_ms;
      csv "obs"
        "scenario,scale,disabled_ns,records_per_explain,off_ms,debug_ms,debug_overhead_pct,disabled_overhead_pct,export_ms"
        (Fmt.str "%s,%d,%.2f,%d,%.3f,%.3f,%.2f,%.4f,%.4f" name scale
           disabled_ns records off_ms debug_ms debug_pct disabled_pct export_ms);
      add_obs
        {
          oscenario = name;
          oscale = scale;
          odisabled_ns = disabled_ns;
          orecords_per_explain = records;
          ooff_ms = off_ms;
          odebug_ms = debug_ms;
          odebug_overhead_pct = debug_pct;
          odisabled_overhead_pct = disabled_pct;
          oexport_ms = export_ms;
        })
    [ "D1"; "T2"; "Q3" ];
  Obs.Log.remove_sink "bench.obs.count";
  Obs.Log.clear_ring ();
  Obs.Log.set_level saved_level

(* --- Columnar vs row engine (perf PR acceptance run) ----------------------

   Runs the fig8 family twice in one process — first forcing the legacy
   row-at-a-time engine, then the columnar batch engine — so the two
   paths share warmup, data generation, and GC state.  With [--json] the
   records land under benches "fig8-row" and "fig8-columnar"; diffing
   the per-phase columns (tracing above all) is the acceptance check. *)

let bench_columnar ?(scales = [ 32 ]) () =
  let saved = Engine.Columnar.row_engine () in
  Fun.protect ~finally:(fun () -> Engine.Columnar.set_row_engine saved)
  @@ fun () ->
  let reps = 5 in
  Fmt.pr "@.== Columnar vs row engine (interleaved, per-phase min of %d) ==@."
    reps;
  Fmt.pr "%-6s %-6s %-8s %-10s %-10s %-10s %-10s@." "scen" "scale" "rows"
    "engine" "query ms" "RP ms" "trace ms";
  List.iter
    (fun name ->
      let s = scenario name in
      List.iter
        (fun scale ->
          let inst = instance ~scale s in
          (* One sample = a (query, explain) pair on each arm back to
             back, row first.  Interleaving the arms inside every rep
             means a noisy CPU window taxes both engines equally instead
             of whichever sweep happened to be running; per-phase minima
             across reps then discard the taxed samples. *)
          let measure row_arm =
            Engine.Columnar.set_row_engine row_arm;
            Gc.full_major ();
            let _, q =
              time_span "bench.query" (fun sp -> run_query ~parent:sp inst)
            in
            Gc.full_major ();
            (q, run_rp inst)
          in
          let samples =
            List.init reps (fun _ -> (measure true, measure false))
          in
          let emit bench pick =
            let qs, rps = List.split (List.map pick samples) in
            let dur r = Obs.Span.duration_ms r.Whynot.Pipeline.span in
            let q_ms = List.fold_left Float.min Float.infinity qs in
            let best =
              List.fold_left
                (fun b r -> if dur r < dur b then r else b)
                (List.hd rps) (List.tl rps)
            in
            let rp_ms = dur best in
            let phase_mins =
              List.map
                (fun (p, ms) ->
                  ( p,
                    List.fold_left
                      (fun acc r ->
                        match
                          List.assoc_opt p
                            (Whynot.Pipeline.phase_durations_ms r)
                        with
                        | Some m -> Float.min acc m
                        | None -> acc)
                      ms (List.tl rps) ))
                (Whynot.Pipeline.phase_durations_ms (List.hd rps))
            in
            Fmt.pr "%-6s %-6d %-8d %-10s %-10.2f %-10.2f %-10.2f@." name scale
              (db_rows inst)
              (if bench = "fig8-row" then "row" else "columnar")
              q_ms rp_ms
              (match List.assoc_opt "tracing" phase_mins with
              | Some ms -> ms
              | None -> 0.);
            csv bench
              ("scenario,scale,rows,query_ms,rp_ms," ^ phase_header)
              (Fmt.str "%s,%d,%d,%.3f,%.3f,%s" name scale (db_rows inst) q_ms
                 rp_ms
                 (String.concat ","
                    (List.map (fun (_, ms) -> Fmt.str "%.3f" ms) phase_mins)));
            add_json
              {
                jbench = bench;
                jscenario = name;
                jscale = scale;
                jrows = db_rows inst;
                jquery_ms = Some q_ms;
                jrpnosa_ms = None;
                jrp_ms = rp_ms;
                jphases = phase_mins;
                jgc = Whynot.Pipeline.phase_gc best;
              }
          in
          emit "fig8-row" fst;
          emit "fig8-columnar" snd)
        scales)
    [ "D1"; "D2"; "D3"; "D4"; "D5" ]

(* --- Approx: budget-ladder speedups (PR acceptance run) -------------------

   Exact RP vs each degradation rung — sampled tracing (stride), top-k
   MSR (early-terminated ranking), and the two combined — per scenario
   and scale.  The acceptance claims: the combined approximate run is
   >= 3x faster than exact at scale >= 128, the top-k ranking is the
   k-prefix of the exact ranking (bound maintenance prunes, never
   reorders), and the combined run reports an honest confidence and
   skipped-candidate count. *)

let bench_approx ?(scales = [ 32; 64; 128; 256 ]) ?(stride = 8)
    ?(combined_stride = 16) ?(k = 3) () =
  Fmt.pr
    "@.== Approx: budget ladder, stride %d / top-%d / budgeted stride %d (min \
     of 3) ==@."
    stride k combined_stride;
  Fmt.pr "%-6s %-6s %-8s %-10s %-11s %-9s %-11s %-8s %-6s %-8s %-7s@." "scen"
    "scale" "rows" "exact ms" "sampled ms" "topk ms" "combined" "speedup"
    "conf" "skipped" "prefix";
  let sampled_cfg =
    { Whynot.Approx.exact with Whynot.Approx.sample_stride = Some stride }
  in
  let topk_cfg = { Whynot.Approx.exact with Whynot.Approx.top_k = Some k } in
  (* The combined rung is the budgeted production shape: a wall-clock
     budget plus explicit stride/top-k floors, so the ladder starts
     coarse and can only coarsen further as the budget burns. *)
  let combined_cfg =
    {
      Whynot.Approx.budget_ms = Some 10.0;
      sample_stride = Some combined_stride;
      top_k = Some k;
    }
  in
  List.iter
    (fun name ->
      let s = scenario name in
      List.iter
        (fun scale ->
          let inst = instance ~scale s in
          let phi = inst.Scenarios.Scenario.question in
          let q = phi.Whynot.Question.query in
          let run ?cfg () =
            Gc.full_major ();
            Whynot.Pipeline.explain ~parallel:!parallel
              ?approx:(Option.map Whynot.Approx.start cfg)
              ~alternatives:inst.Scenarios.Scenario.alternatives phi
          in
          (* min-of-3 per rung, interleaved so a noisy window taxes all
             rungs rather than whichever was sweeping *)
          let best ?cfg () =
            let dur r = Obs.Span.duration_ms r.Whynot.Pipeline.span in
            let reps = List.map (fun _ -> run ?cfg ()) [ 1; 2; 3 ] in
            List.fold_left
              (fun b r -> if dur r < dur b then r else b)
              (List.hd reps) (List.tl reps)
          in
          let exact = best () in
          let sampled = best ~cfg:sampled_cfg () in
          let topk = best ~cfg:topk_cfg () in
          let combined = best ~cfg:combined_cfg () in
          let ms r = Obs.Span.duration_ms r.Whynot.Pipeline.span in
          let speedup = ms exact /. Float.max (ms combined) 1e-6 in
          (* top-k never reorders: its ranking is a prefix of exact's *)
          let keys r =
            List.map
              (Whynot.Explanation.to_string_with_query q)
              r.Whynot.Pipeline.explanations
          in
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs, y :: ys -> x = y && is_prefix xs ys
            | _ :: _, [] -> false
          in
          let prefix_ok = is_prefix (keys topk) (keys exact) in
          let confidence, skipped =
            match combined.Whynot.Pipeline.approx with
            | Some r -> (r.Whynot.Approx.confidence, r.Whynot.Approx.skipped)
            | None -> (1.0, 0)
          in
          Fmt.pr
            "%-6s %-6d %-8d %-10.2f %-11.2f %-9.2f %-11.2f %-8.1f %-6.3f \
             %-8d %-7b@."
            name scale (db_rows inst) (ms exact) (ms sampled) (ms topk)
            (ms combined) speedup confidence skipped prefix_ok;
          csv "approx"
            "scenario,scale,rows,exact_ms,sampled_ms,topk_ms,combined_ms,speedup,confidence,skipped,prefix_ok"
            (Fmt.str "%s,%d,%d,%.3f,%.3f,%.3f,%.3f,%.2f,%.4f,%d,%b" name scale
               (db_rows inst) (ms exact) (ms sampled) (ms topk) (ms combined)
               speedup confidence skipped prefix_ok);
          add_approx
            {
              xscenario = name;
              xscale = scale;
              xrows = db_rows inst;
              xexact_ms = ms exact;
              xsampled_ms = ms sampled;
              xtopk_ms = ms topk;
              xcombined_ms = ms combined;
              xspeedup = speedup;
              xconfidence = confidence;
              xskipped = skipped;
              xprefix_ok = prefix_ok;
            })
        scales)
    [ "D1"; "D3"; "T2" ]

(* --- Recover: checkpoint restore vs lineage recompute, spill cost ---------

   Two claims, two column groups per scenario:
   - restore: lose one materialized shuffle output partition and restore
     it.  With the barrier checkpoint on disk the restore is one framed
     file read; with the file gone (executor disk lost) the same fetch
     fails its open, is counted corrupt, and falls back to the lineage
     closure — a full re-shuffle of the upstream input.  Lineage
     truncation is exactly the gap between those two columns.
   - spill: the full explanation pipeline under a 4 KiB memory watermark
     (every intermediate spilled to disk and restored on access) vs
     resident, with byte-identical explanation sets required. *)

let bench_recover ?(scale = 4) ?(replicate = 20_000) () =
  Fmt.pr "@.== Recover: checkpoint restore vs lineage recompute (scale %d) ==@."
    scale;
  Fmt.pr "%-6s %-8s %-10s %-10s %-8s %-10s %-10s %-8s %-9s@." "scen" "rows"
    "ckpt ms" "src ms" "speedup" "RP ms" "RP+spill" "spill%" "identical";
  let base = Filename.temp_file "whynot-bench-recover" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  Fun.protect
    ~finally:(fun () ->
      Engine.Checkpoint.sweep ();
      try Unix.rmdir base with Unix.Unix_error _ -> ())
  @@ fun () ->
  let reps = 5 in
  let median times =
    Array.sort compare times;
    times.(Array.length times / 2)
  in
  let clear_checkpoint_files () =
    match Engine.Checkpoint.run_dir () with
    | None -> ()
    | Some dir ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".ckpt" then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir)
  in
  List.iter
    (fun name ->
      let inst = instance ~scale (scenario name) in
      let phi = inst.Scenarios.Scenario.question in
      (* the shuffle input: the scenario's largest base table (a
         homogeneous batch, as real shuffle outputs are — mixing tables
         would force the boxed-value codec fallback), replicated to a
         workload where restore cost is measurable *)
      let rows_of rel =
        match Nested.Relation.data rel with
        | Nested.Value.Bag items ->
          List.concat_map (fun (v, m) -> List.init m (fun _ -> v)) items
        | v -> [ v ]
      in
      let base_rows =
        List.fold_left
          (fun best (_, rel) ->
            let rs = rows_of rel in
            if List.length rs > List.length best then rs else best)
          []
          (Nested.Relation.Db.tables phi.Whynot.Question.db)
      in
      let copies = max 1 (replicate / max 1 (List.length base_rows)) in
      let rows =
        List.concat (List.init copies (fun _ -> base_rows))
      in
      let nrows = List.length rows in
      let parts = max 16 !partitions in
      let key_of v = Nested.Value.Int (Hashtbl.hash v land 0xff) in
      let ckpt_ms, src_ms =
        Engine.Checkpoint.with_config
          (Some
             {
               Engine.Checkpoint.dir = Some base;
               checkpoint_shuffles = true;
               max_memory_bytes = None;
             })
        @@ fun () ->
        let source = Engine.Dataset.distribute ~partitions:parts rows in
        let shuffled, _ =
          Engine.Dataset.shuffle_by ~barrier:(Fmt.str "bench-%s" name)
            ~partitions:parts key_of source
        in
        ignore (Engine.Dataset.to_list shuffled : Nested.Value.t list);
        let lose_all () =
          for i = 0 to parts - 1 do
            Engine.Dataset.recover_partition shuffled i
          done
        in
        (* force every partition fetch without paying the (identical in
           both arms, and much larger) batch→rows conversion *)
        let force () =
          ignore
            (Engine.Dataset.map_cpartitions ~label:"bench-force" Fun.id
               shuffled
              : Engine.Dataset.t)
        in
        (* arm 1: the whole stage output is lost (executor gone) and the
           checkpoint files answer the restore — [parts] framed reads *)
        let ckpt_times =
          Array.init reps (fun _ ->
              lose_all ();
              snd (time_span "bench.recover.ckpt" (fun _ -> force ())))
        in
        (* arm 2: the files are gone too — every fetch goes corrupt and
           replays the full upstream lineage, one re-shuffle of the
           whole input per lost partition (plus the re-checkpoint, also
           timed: the rewrite is part of the real recovery path) *)
        let src_times =
          Array.init reps (fun _ ->
              clear_checkpoint_files ();
              lose_all ();
              snd (time_span "bench.recover.src" (fun _ -> force ())))
        in
        (median ckpt_times, median src_times)
      in
      (* spill: full pipeline under a starvation watermark vs resident *)
      let run_rp_plain () =
        Engine.Checkpoint.with_config None (fun () -> run_rp inst)
      in
      let run_rp_spill () =
        Engine.Checkpoint.with_config
          (Some
             {
               Engine.Checkpoint.dir = Some base;
               checkpoint_shuffles = false;
               max_memory_bytes = Some 4096;
             })
          (fun () -> run_rp inst)
      in
      let spill_batches_c = Obs.Metrics.counter "engine.spill.batches" in
      let plain0 = run_rp_plain () in
      let plain_times =
        Array.init reps (fun _ ->
            snd (time_span "bench.recover.plain" (fun _ -> run_rp_plain ())))
      in
      let batches0 = Obs.Metrics.Counter.value spill_batches_c in
      let spill0 = run_rp_spill () in
      let spill_times =
        Array.init reps (fun _ ->
            snd (time_span "bench.recover.spill" (fun _ -> run_rp_spill ())))
      in
      let spill_batches =
        Obs.Metrics.Counter.value spill_batches_c - batches0
      in
      let plain_rp_ms = median plain_times
      and spill_rp_ms = median spill_times in
      let spill_pct =
        100. *. (spill_rp_ms -. plain_rp_ms) /. Float.max plain_rp_ms 1e-9
      in
      let identical =
        Whynot.Pipeline.explanation_sets plain0
        = Whynot.Pipeline.explanation_sets spill0
      in
      let speedup = src_ms /. Float.max ckpt_ms 1e-9 in
      Fmt.pr "%-6s %-8d %-10.3f %-10.3f %-8.1f %-10.3f %-10.3f %-8.1f %-9b@."
        name nrows ckpt_ms src_ms speedup plain_rp_ms spill_rp_ms spill_pct
        identical;
      csv "recover"
        "scenario,scale,rows,checkpoint_restore_ms,source_recompute_ms,speedup,plain_rp_ms,spill_rp_ms,spill_overhead_pct,spill_batches,identical"
        (Fmt.str "%s,%d,%d,%.3f,%.3f,%.2f,%.3f,%.3f,%.2f,%d,%b" name scale
           nrows ckpt_ms src_ms speedup plain_rp_ms spill_rp_ms spill_pct
           spill_batches identical);
      add_recover
        {
          rscenario = name;
          rscale = scale;
          rrows = nrows;
          rckpt_ms = ckpt_ms;
          rsrc_ms = src_ms;
          rspeedup = speedup;
          rplain_rp_ms = plain_rp_ms;
          rspill_rp_ms = spill_rp_ms;
          rspill_pct = spill_pct;
          rspill_batches = spill_batches;
          ridentical = identical;
        })
    [ "D1"; "T2"; "Q3" ]

(* Smallest-scale pass over every bench family — a CI guard that the
   bench harness itself keeps working, cheap enough for [make verify].
   The recover rung doubles as the spill smoke: it runs the pipeline
   under a starvation watermark and checks the explanations match. *)
let smoke () =
  fig8 ~scales:[ 1 ] ();
  fig9 ~scales:[ 1 ] ();
  fig10 ~scale:1 ();
  fig11 ~scale:1 ();
  bench_columnar ~scales:[ 1 ] ();
  bench_approx ~scales:[ 1 ] ();
  bench_recover ~scale:1 ~replicate:2_000 ()

(* --- Bechamel micro-benchmarks: one Test.make per table/figure ------------ *)

let bechamel_tests () =
  let open Bechamel in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "fig8/D1-rp" (fun () -> run_rp (instance (scenario "D1")));
    mk "fig9/T2-rp" (fun () -> run_rp (instance (scenario "T2")));
    mk "fig10/Q3-rp" (fun () -> run_rp (instance (scenario "Q3")));
    mk "fig10/Q3-query" (fun () -> run_query (instance (scenario "Q3")));
    mk "fig11/Q3-4sa" (fun () ->
        let inst = instance (scenario "Q3") in
        Whynot.Pipeline.explain ~max_sas:4
          ~alternatives:(widened_alternatives "Q3" inst)
          inst.Scenarios.Scenario.question);
    mk "table6/C1-rp" (fun () -> run_rp (instance (scenario "C1")));
    mk "table7/wnpp-D4" (fun () ->
        Baselines.Wnpp.explanations
          (instance (scenario "D4")).Scenarios.Scenario.question);
    mk "table8/Q10-rp" (fun () -> run_rp (instance (scenario "Q10")));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "@.== Bechamel timings (OLS estimate per run) ==@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Fmt.pr "%-20s %12.3f ms/run@." name (est /. 1e6)
          | _ -> Fmt.pr "%-20s (no estimate)@." name)
        analyzed)
    (bechamel_tests ())

(* --- Driver ---------------------------------------------------------------- *)

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "-csv" :: rest ->
      csv_enabled := true;
      parse acc rest
    | ("-json" | "--json") :: file :: rest ->
      json_file := file;
      parse acc rest
    | ("-partitions" | "--partitions") :: n :: rest ->
      partitions := max 1 (int_of_string n);
      parse acc rest
    | ("-parallel" | "--parallel") :: rest ->
      parallel := true;
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let wants x = args = [] || List.mem x args || List.mem "all" args in
  (* chaos arms process-global fault sites, so it never runs implicitly *)
  let wants_explicit x = List.mem x args || List.mem "all" args in
  if wants "table7" then table7 ();
  if wants "table8" then table8 ();
  if wants "table6" then table6 ();
  if wants "table3" then table3 ();
  if wants "fig8" then fig8 ();
  if wants "fig9" then fig9 ();
  if wants "fig10" then fig10 ();
  if wants "fig11" then fig11 ();
  if wants "ablation" then ablation ();
  (* engine A/B and smoke are targeted runs, never part of the default set *)
  if wants_explicit "columnar" then bench_columnar ();
  if wants_explicit "smoke" then smoke ();
  (* budget-ladder acceptance run: targeted, scales past the default sweep *)
  if wants_explicit "approx" then bench_approx ();
  if wants "serve" then bench_serve ();
  (* recover redirects checkpoint scratch to a bench temp dir: explicit only *)
  if wants_explicit "recover" then bench_recover ();
  if wants_explicit "chaos" then bench_chaos ();
  (* obs flips the process-global log level and sink set: explicit only *)
  if wants_explicit "obs" then bench_obs ();
  if wants "bechamel" then run_bechamel ();
  write_json ();
  close_csv ()
