(* Static typing of NRAB queries, following the output types of Table 1.

   Used both to evaluate queries (outer joins and outer flattens need the
   schema for null padding) and to prune schema alternatives: an attribute
   substitution that yields an ill-typed query or changes the output schema
   is discarded (Section 5.2). *)

open Nested

type env = (string * Vtype.t) list

type error = { op_id : int; message : string }

exception Type_error of error

let fail op_id fmt = Fmt.kstr (fun message -> raise (Type_error { op_id; message })) fmt

let tuple_of op_id (ty : Vtype.t) : (string * Vtype.t) list =
  match ty with
  | Vtype.TBag (Vtype.TTuple fields) -> fields
  | _ -> fail op_id "input is not a relation: %a" Vtype.pp ty

let field_type op_id fields a =
  match List.assoc_opt a fields with
  | Some ty -> ty
  | None ->
    fail op_id "unknown attribute %s (have: %s)" a
      (String.concat ", " (List.map fst fields))

let rec expr_type op_id (fields : (string * Vtype.t) list) (e : Expr.t) :
    Vtype.t =
  match e with
  | Expr.Const (Value.Bool _) -> Vtype.TBool
  | Expr.Const (Value.Int _) -> Vtype.TInt
  | Expr.Const (Value.Float _) -> Vtype.TFloat
  | Expr.Const (Value.String _) -> Vtype.TString
  | Expr.Const v -> (
    match Vtype.infer v with
    | Some ty -> ty
    | None -> fail op_id "cannot type constant %a" Value.pp v)
  | Expr.Attr a -> field_type op_id fields a
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) -> (
    let ta = expr_type op_id fields a and tb = expr_type op_id fields b in
    match ta, tb with
    | Vtype.TInt, Vtype.TInt -> Vtype.TInt
    | (Vtype.TInt | Vtype.TFloat), (Vtype.TInt | Vtype.TFloat) -> Vtype.TFloat
    | _ -> fail op_id "non-numeric operands: %a, %a" Vtype.pp ta Vtype.pp tb)

let comparable (a : Vtype.t) (b : Vtype.t) : bool =
  match a, b with
  | (Vtype.TInt | Vtype.TFloat), (Vtype.TInt | Vtype.TFloat) -> true
  | _ -> Vtype.equal a b

let rec check_pred op_id fields (p : Expr.pred) : unit =
  match p with
  | Expr.True | Expr.False -> ()
  | Expr.Cmp (_, a, b) ->
    let ta = expr_type op_id fields a and tb = expr_type op_id fields b in
    if not (comparable ta tb) then
      fail op_id "incomparable types %a vs %a" Vtype.pp ta Vtype.pp tb
  | Expr.And (a, b) | Expr.Or (a, b) ->
    check_pred op_id fields a;
    check_pred op_id fields b
  | Expr.Not p -> check_pred op_id fields p
  | Expr.IsNull e | Expr.IsNotNull e -> ignore (expr_type op_id fields e)
  | Expr.Contains (e, _) -> (
    match expr_type op_id fields e with
    | Vtype.TString -> ()
    | ty -> fail op_id "contains on non-string %a" Vtype.pp ty)

let check_fresh op_id existing name =
  if List.mem_assoc name existing then
    fail op_id "attribute name %s already exists" name

let rec infer (env : env) (q : Query.t) : Vtype.t =
  let id = q.id in
  match q.node, q.children with
  | Query.Table name, [] -> (
    match List.assoc_opt name env with
    | Some ty -> ty
    | None -> fail id "unknown table %s" name)
  | Query.Select pred, [ c ] ->
    let ty = infer env c in
    check_pred id (tuple_of id ty) pred;
    ty
  | Query.Project cols, [ c ] ->
    let fields = tuple_of id (infer env c) in
    let out =
      List.map (fun (name, e) -> (name, expr_type id fields e)) cols
    in
    let names = List.map fst out in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then fail id "duplicate output attribute in projection";
    Vtype.relation out
  | Query.Rename pairs, [ c ] ->
    let fields = tuple_of id (infer env c) in
    let renamed_olds = List.map snd pairs in
    List.iter (fun a -> ignore (field_type id fields a)) renamed_olds;
    let out =
      List.map
        (fun (l, ty) ->
          match List.find_opt (fun (_, old) -> String.equal old l) pairs with
          | Some (fresh, _) -> (fresh, ty)
          | None -> (l, ty))
        fields
    in
    let names = List.map fst out in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then fail id "duplicate attribute after renaming";
    Vtype.relation out
  | Query.Join (_, pred), [ l; r ] ->
    let lf = tuple_of id (infer env l) and rf = tuple_of id (infer env r) in
    List.iter (fun (name, _) -> check_fresh id lf name) rf;
    let out = lf @ rf in
    check_pred id out pred;
    Vtype.relation out
  | Query.Product, [ l; r ] ->
    let lf = tuple_of id (infer env l) and rf = tuple_of id (infer env r) in
    List.iter (fun (name, _) -> check_fresh id lf name) rf;
    Vtype.relation (lf @ rf)
  | Query.Union, [ l; r ] | Query.Diff, [ l; r ] ->
    let tl = infer env l and tr = infer env r in
    if not (Vtype.equal tl tr) then
      fail id "union/difference over different schemas: %a vs %a" Vtype.pp tl
        Vtype.pp tr;
    tl
  | Query.Dedup, [ c ] -> infer env c
  | Query.Flatten_tuple a, [ c ] -> (
    let fields = tuple_of id (infer env c) in
    match field_type id fields a with
    | Vtype.TTuple inner ->
      List.iter (fun (name, _) -> check_fresh id fields name) inner;
      Vtype.relation (fields @ inner)
    | ty -> fail id "tuple flatten of non-tuple attribute %s: %a" a Vtype.pp ty)
  | Query.Flatten (_, a), [ c ] -> (
    let fields = tuple_of id (infer env c) in
    match field_type id fields a with
    | Vtype.TBag (Vtype.TTuple inner) ->
      List.iter (fun (name, _) -> check_fresh id fields name) inner;
      Vtype.relation (fields @ inner)
    | ty ->
      fail id "relation flatten of non-relation attribute %s: %a" a Vtype.pp ty)
  | Query.Nest_tuple (pairs, c_name), [ c ] ->
    let fields = tuple_of id (infer env c) in
    let attrs = List.map snd pairs in
    let nested =
      List.map (fun (label, a) -> (label, field_type id fields a)) pairs
    in
    let rest = List.filter (fun (l, _) -> not (List.mem l attrs)) fields in
    check_fresh id rest c_name;
    Vtype.relation (rest @ [ (c_name, Vtype.TTuple nested) ])
  | Query.Nest_rel (pairs, c_name), [ c ] ->
    let fields = tuple_of id (infer env c) in
    let attrs = List.map snd pairs in
    let nested =
      List.map (fun (label, a) -> (label, field_type id fields a)) pairs
    in
    let rest = List.filter (fun (l, _) -> not (List.mem l attrs)) fields in
    check_fresh id rest c_name;
    Vtype.relation (rest @ [ (c_name, Vtype.TBag (Vtype.TTuple nested)) ])
  | Query.Agg_tuple (fn, a, b), [ c ] -> (
    let fields = tuple_of id (infer env c) in
    match field_type id fields a with
    | Vtype.TBag (Vtype.TTuple [ (_, inner) ]) ->
      check_fresh id fields b;
      Vtype.relation (fields @ [ (b, Agg.output_type fn inner) ])
    | Vtype.TBag inner when Vtype.is_primitive inner ->
      check_fresh id fields b;
      Vtype.relation (fields @ [ (b, Agg.output_type fn inner) ])
    | ty ->
      fail id "per-tuple aggregation over unsupported attribute %s: %a" a
        Vtype.pp ty)
  | Query.Group_agg (group, aggs), [ c ] ->
    let fields = tuple_of id (infer env c) in
    let group_fields =
      List.map (fun (label, a) -> (label, field_type id fields a)) group
    in
    let agg_fields =
      List.map
        (fun (fn, a, out) ->
          let input_ty =
            match a with
            | Some a -> field_type id fields a
            | None -> Vtype.TInt (* count-star *)
          in
          (out, Agg.output_type fn input_ty))
        aggs
    in
    let out = group_fields @ agg_fields in
    let names = List.map fst out in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then fail id "duplicate output attribute in aggregation";
    Vtype.relation out
  | _ -> fail id "malformed query node (wrong arity)"

let infer_result env q : (Vtype.t, error) result =
  match infer env q with
  | ty -> Ok ty
  | exception Type_error e -> Error e

let well_typed env q =
  match infer_result env q with Ok _ -> true | Error _ -> false
