(** Cooperative cancellation tokens for the why-not pipeline.

    A token carries an optional deadline (absolute, on the {!Obs.Clock}
    timeline) and a flag that can be raised explicitly.  The pipeline
    polls the token at its natural preemption points — phase boundaries
    and schema-alternative boundaries — and bails out by raising
    {!Cancelled} with the name of the point that observed the
    cancellation, so a caller (e.g. the serve scheduler) can attribute
    how far a cancelled run got.

    Checks are cheap (an atomic load, plus one clock read when a
    deadline is set), so polling at every boundary costs nothing
    measurable next to the phase work itself. *)

type t

(** Raised by {!check}; the payload names the boundary that observed the
    cancellation (a phase name like ["tracing"], an SA name like
    ["sa:S2"], or ["pool.dequeue"]). *)
exception Cancelled of string

(** A token that can never be cancelled — the default everywhere. *)
val none : t

(** A fresh flag-only token (cancelled only via {!cancel}). *)
val create : unit -> t

(** [with_deadline_ms ?from_ns budget] — a token that reads as cancelled
    once [budget] milliseconds have elapsed from [from_ns] (default:
    now).  It can additionally be cancelled early via {!cancel}. *)
val with_deadline_ms : ?from_ns:int -> float -> t

(** Raise the flag.  Idempotent; a no-op on {!none}. *)
val cancel : t -> unit

(** True once the flag is raised or the deadline has passed. *)
val cancelled : t -> bool

(** [check t ~where] raises [Cancelled where] iff [cancelled t]. *)
val check : t -> where:string -> unit

(** Milliseconds left until the deadline ([None] when the token has no
    deadline); negative once the deadline has passed. *)
val remaining_ms : t -> float option
