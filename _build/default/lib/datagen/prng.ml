(* Deterministic splitmix64 PRNG.  All generators take explicit seeds so
   that datasets — and therefore every experiment — are reproducible. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 (g : t) : int64 =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int (g : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 g) 1) (Int64.of_int bound))

(* Uniform int in [lo, hi] inclusive. *)
let range (g : t) ~lo ~hi : int = lo + int g (hi - lo + 1)

let float (g : t) : float =
  Int64.to_float (Int64.shift_right_logical (next_int64 g) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool (g : t) ~(p : float) : bool = float g < p

let pick (g : t) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int g (List.length xs))

let pick_weighted (g : t) (xs : ('a * int) list) : 'a =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 xs in
  if total <= 0 then invalid_arg "Prng.pick_weighted: non-positive weights";
  let r = int g total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.pick_weighted: unreachable"
    | (x, w) :: rest -> if r < acc + w then x else go (acc + w) rest
  in
  go 0 xs

(* Sample [n] elements (with replacement) from a list. *)
let sample (g : t) (n : int) (xs : 'a list) : 'a list =
  List.init n (fun _ -> pick g xs)
