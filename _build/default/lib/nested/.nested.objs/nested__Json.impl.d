lib/nested/json.ml: Buffer Char Float Fmt List Relation String Value Vtype
