(* Serialization tests: JSON codec for values/schemas/relations/databases,
   the s-expression reader, and the query/predicate/NIP surface syntax —
   including round-trip properties. *)

open Nested
open Nrab

(* --- JSON --- *)

let test_json_parse_basics () =
  let open Json in
  Alcotest.(check bool) "null" true (of_string "null" = J_null);
  Alcotest.(check bool) "bool" true (of_string "true" = J_bool true);
  Alcotest.(check bool) "int" true (of_string "42" = J_int 42);
  Alcotest.(check bool) "negative" true (of_string "-7" = J_int (-7));
  Alcotest.(check bool) "float" true (of_string "1.5" = J_float 1.5);
  Alcotest.(check bool) "string" true (of_string "\"hi\"" = J_string "hi");
  Alcotest.(check bool) "escape" true (of_string "\"a\\nb\"" = J_string "a\nb");
  Alcotest.(check bool) "unicode escape" true
    (of_string "\"\\u0041\"" = J_string "A");
  Alcotest.(check bool) "array" true
    (of_string "[1, 2]" = J_array [ J_int 1; J_int 2 ]);
  Alcotest.(check bool) "object" true
    (of_string "{\"a\": 1}" = J_object [ ("a", J_int 1) ]);
  Alcotest.(check bool) "nested" true
    (of_string "{\"xs\": [{\"y\": null}]}"
    = J_object [ ("xs", J_array [ J_object [ ("y", J_null) ] ]) ])

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter fails [ ""; "{"; "[1,"; "nul"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("addresses", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let sample_relation =
  Relation.of_tuples ~schema:person_schema
    [
      Value.Tuple
        [
          ("name", Value.String "Sue");
          ( "addresses",
            Value.bag_of_list
              [
                Value.Tuple [ ("city", Value.String "LA"); ("year", Value.Int 2019) ];
                Value.Tuple [ ("city", Value.String "NY"); ("year", Value.Int 2018) ];
              ] );
        ];
      Value.Tuple [ ("name", Value.String "Ann"); ("addresses", Value.Null) ];
    ]

let test_relation_roundtrip () =
  let json = Json.relation_to_json sample_relation in
  let back = Json.relation_of_json (Json.of_string (Json.to_string json)) in
  Alcotest.(check string) "schema" (Vtype.to_string person_schema)
    (Vtype.to_string (Relation.schema back));
  Alcotest.(check string) "data"
    (Value.to_string (Relation.data sample_relation))
    (Value.to_string (Relation.data back))

let test_db_roundtrip () =
  let db = Relation.Db.of_list [ ("people", sample_relation) ] in
  let back = Json.db_of_string (Json.db_to_string db) in
  Alcotest.(check string) "table data"
    (Value.to_string (Relation.data (Relation.Db.find_exn "people" db)))
    (Value.to_string (Relation.data (Relation.Db.find_exn "people" back)))

let test_schema_directed_decode () =
  (* ints decode as floats under a float schema; missing object fields
     become null *)
  let ty = Vtype.TTuple [ ("x", Vtype.TFloat); ("y", Vtype.TInt) ] in
  let v = Json.value_of_json ty (Json.of_string "{\"x\": 3}") in
  Alcotest.(check bool) "coercion + padding" true
    (Value.equal v (Value.Tuple [ ("x", Value.Float 3.0); ("y", Value.Null) ]))

let test_multiplicities_structural () =
  let ty = Vtype.TBag Vtype.TInt in
  let v = Json.value_of_json ty (Json.of_string "[1, 1, 2]") in
  Alcotest.(check int) "multiplicity 2" 2 (Value.multiplicity v (Value.Int 1));
  Alcotest.(check string) "re-encoding expands" "[1, 1, 2]"
    (Json.to_string (Json.value_to_json v))

(* --- s-expressions --- *)

let test_sexp_basics () =
  let open Sexp in
  Alcotest.(check bool) "atom" true (of_string "abc" = Atom "abc");
  Alcotest.(check bool) "quoted" true (of_string "\"a b\"" = Atom "a b");
  Alcotest.(check bool) "list" true
    (of_string "(a (b c))" = List [ Atom "a"; List [ Atom "b"; Atom "c" ] ]);
  Alcotest.(check bool) "comments" true
    (of_string "(a ; comment\n b)" = List [ Atom "a"; Atom "b" ]);
  Alcotest.(check bool) "roundtrip" true
    (let s = List [ Atom "x"; Atom "has space"; List [] ] in
     of_string (to_string s) = s)

(* --- query syntax --- *)

let running_example_text =
  "(nest (name) nList (project (name city) (select (>= year 2019) \
   (flatten-inner address2 (table person)))))"

let test_parse_running_example () =
  let q = Parser.query_of_string running_example_text in
  Alcotest.(check int) "five operators" 5 (Query.op_count q);
  Alcotest.(check (list string)) "tables" [ "person" ] (Query.input_tables q)

let sample_queries =
  [
    running_example_text;
    "(table r)";
    "(select (and (= a 1) (not (contains b UEFA))) (table r))";
    "(project (a (b2 (* b 2.5)) (s (str hello))) (table r))";
    "(rename ((fresh old)) (table r))";
    "(join left (= a c) (table r) (dedup (table s)))";
    "(union (table r) (diff (table r) (table r)))";
    "(flatten-outer kids (flatten-tuple meta (table r)))";
    "(nest-tuple (a b) ab (table r))";
    "(agg count kids cnt (table r))";
    "(groupby (g) ((sum a total) (count * n)) (table r))";
    "(select (or (is-null a) (not-null b)) (product (table r) (table s)))";
  ]

let test_query_roundtrips () =
  List.iter
    (fun text ->
      let q = Parser.query_of_string text in
      let printed = Parser.query_to_string q in
      let q2 = Parser.query_of_string printed in
      (* structural equality up to ids *)
      let strip q = Query.to_string q in
      Alcotest.(check string) (Fmt.str "roundtrip %s" text) (strip q) (strip q2))
    sample_queries

let test_parsed_query_evaluates () =
  let db =
    Relation.Db.of_list
      [
        ( "person",
          Relation.of_tuples
            ~schema:
              (Vtype.relation
                 [
                   ("name", Vtype.TString);
                   ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
                 ])
            [
              Value.Tuple
                [
                  ("name", Value.String "Sue");
                  ( "address2",
                    Value.bag_of_list
                      [ Value.Tuple [ ("city", Value.String "LA"); ("year", Value.Int 2019) ] ]
                  );
                ];
            ] );
      ]
  in
  let q =
    Parser.query_of_string
      "(nest (name) nList (project (name city) (select (>= year 2019) \
       (flatten-inner address2 (table person)))))"
  in
  let result = Eval.eval db q in
  Alcotest.(check int) "evaluates" 1 (Relation.cardinal result)

let test_parse_errors () =
  let fails s =
    match Parser.query_of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter fails
    [ "(tables r)"; "(select (table r))"; "(join sideways true (table r) (table s))";
      "(groupby g bad (table r))" ]

(* --- NIP syntax --- *)

let test_nip_parse () =
  let p =
    Whynot.Nip_syntax.of_string "(tuple (city (str NY)) (nList (bag ? *)))"
  in
  Alcotest.(check bool) "running example pattern" true
    (p
    = Whynot.Nip.tup
        [ ("city", Whynot.Nip.str "NY"); ("nList", Whynot.Nip.some_element) ])

let test_nip_predicates () =
  let p = Whynot.Nip_syntax.of_string "(tuple (revenue (> 0)) (n (>= 1.5)))" in
  match p with
  | Whynot.Nip.Tup [ ("revenue", Whynot.Nip.Pred (Expr.Gt, Value.Int 0));
                     ("n", Whynot.Nip.Pred (Expr.Ge, Value.Float 1.5)) ] ->
    ()
  | _ -> Alcotest.failf "unexpected pattern %s" (Whynot.Nip.to_string p)

let test_nip_roundtrips () =
  List.iter
    (fun text ->
      let p = Whynot.Nip_syntax.of_string text in
      let p2 = Whynot.Nip_syntax.of_string (Whynot.Nip_syntax.to_string p) in
      Alcotest.(check string) (Fmt.str "roundtrip %s" text)
        (Whynot.Nip.to_string p) (Whynot.Nip.to_string p2))
    [
      "?"; "42"; {|(str "hello world")|}; "(null)"; "(>= 10)";
      "(tuple (a ?) (b (bag 1 2 *)))"; "(bag (tuple (x 1)))";
    ]

(* --- properties --- *)

let value_gen = QCheck.Gen.(
  sized @@ fix (fun self n ->
    if n <= 0 then
      oneof
        [
          return Value.Null;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun b -> Value.Bool b) bool;
          map (fun f -> Value.Float (Float.of_int f)) small_signed_int;
          map (fun s -> Value.String s) (string_size ~gen:printable (return 4));
        ]
    else
      frequency
        [
          (2, map (fun i -> Value.Int i) small_signed_int);
          ( 1,
            map
              (fun vs -> Value.Tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) vs))
              (list_size (int_range 1 3) (self (n / 2))) );
          (1, map Value.bag_of_list (list_size (int_range 0 3) (self (n / 2))));
        ]))

let arb_value = QCheck.make ~print:Value.to_string value_gen

let prop_json_value_roundtrip =
  QCheck.Test.make ~name:"JSON value round-trip (schema-directed)" ~count:200
    arb_value (fun v ->
      match Vtype.infer v with
      | None -> true (* untyped values have no canonical schema *)
      | Some ty ->
        let j = Json.value_to_json v in
        let v' = Json.value_of_json ty (Json.of_string (Json.to_string j)) in
        Value.equal v v')

let type_gen = QCheck.Gen.(
  sized @@ fix (fun self n ->
    if n <= 0 then oneofl [ Vtype.TBool; Vtype.TInt; Vtype.TFloat; Vtype.TString ]
    else
      frequency
        [
          (2, oneofl [ Vtype.TInt; Vtype.TString ]);
          ( 1,
            map
              (fun ts -> Vtype.TTuple (List.mapi (fun i t -> (Fmt.str "f%d" i, t)) ts))
              (list_size (int_range 1 3) (self (n / 2))) );
          (1, map (fun t -> Vtype.TBag t) (self (n / 2)));
        ]))

let prop_json_type_roundtrip =
  QCheck.Test.make ~name:"JSON schema round-trip" ~count:200
    (QCheck.make ~print:Vtype.to_string type_gen) (fun ty ->
      Vtype.equal ty (Json.type_of_json (Json.of_string (Json.to_string (Json.type_to_json ty)))))

let () =
  Alcotest.run "serialization"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "relation roundtrip" `Quick test_relation_roundtrip;
          Alcotest.test_case "db roundtrip" `Quick test_db_roundtrip;
          Alcotest.test_case "schema-directed decode" `Quick test_schema_directed_decode;
          Alcotest.test_case "structural multiplicities" `Quick
            test_multiplicities_structural;
        ] );
      ("sexp", [ Alcotest.test_case "basics" `Quick test_sexp_basics ]);
      ( "query-syntax",
        [
          Alcotest.test_case "running example" `Quick test_parse_running_example;
          Alcotest.test_case "roundtrips" `Quick test_query_roundtrips;
          Alcotest.test_case "parsed query evaluates" `Quick test_parsed_query_evaluates;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "nip-syntax",
        [
          Alcotest.test_case "running example pattern" `Quick test_nip_parse;
          Alcotest.test_case "predicates" `Quick test_nip_predicates;
          Alcotest.test_case "roundtrips" `Quick test_nip_roundtrips;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_json_value_roundtrip; prop_json_type_roundtrip ] );
    ]
