(* Data-tracing tests (Section 5.3): the annotations of Figures 4–6 on the
   paper's running example, per-operator relaxation semantics, and the
   re-validation ablation. *)

open Nested
open Nrab
module Nip = Whynot.Nip

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let addr c y = Value.Tuple [ ("city", Value.String c); ("year", Value.Int y) ]

let person name a1 a2 =
  Value.Tuple
    [
      ("name", Value.String name);
      ("address1", Value.bag_of_list a1);
      ("address2", Value.bag_of_list a2);
    ]

let db =
  Relation.Db.of_list
    [
      ( "person",
        Relation.of_tuples ~schema:person_schema
          [
            person "Peter"
              [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
              [ addr "LA" 2010; addr "SF" 2018 ];
            person "Sue" [ addr "LA" 2019; addr "NY" 2018 ] [ addr "LA" 2019; addr "NY" 2018 ];
          ] );
    ]

let env = [ ("person", person_schema) ]

let query =
  let g = Query.Gen.create () in
  Query.nest_rel ~id:5 g [ "name" ] ~into:"nList"
    (Query.project_attrs ~id:4 g [ "name"; "city" ]
       (Query.select ~id:3 g
          (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
          (Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person"))))

let missing = Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.some_element) ]

let sa0 =
  {
    Whynot.Alternatives.index = 0;
    query;
    changed_ops = Whynot.Msr.Int_set.empty;
    description = "original";
  }

let trace ?revalidate () =
  let bt = Whynot.Backtrace.run ~env query missing in
  Whynot.Tracing.run ?revalidate ~env db sa0 bt

let rows_of tr id =
  match Whynot.Tracing.op_trace tr id with
  | Some ot -> Whynot.Tracing.rows ot
  | None -> Alcotest.failf "no trace for op %d" id

let field_str name (r : Whynot.Tracing.trow) =
  match Value.field name r.Whynot.Tracing.data with
  | Some v -> Value.to_string v
  | None -> "<none>"

(* Figure 4: after table access, Sue is consistent under S1, Peter not. *)
let test_table_annotations () =
  let tr = trace () in
  let rows = rows_of tr 1 in
  Alcotest.(check int) "two input tuples" 2 (List.length rows);
  let consistent_names =
    List.filter_map
      (fun (r : Whynot.Tracing.trow) ->
        if r.Whynot.Tracing.consistent then Value.field "name" r.Whynot.Tracing.data
        else None)
      rows
  in
  Alcotest.(check bool) "only Sue is compatible" true
    (consistent_names = [ Value.String "Sue" ])

(* Figure 5: the flatten yields 4 rows under S1 (2 addresses each), all
   retained; re-validation leaves only the NY row consistent. *)
let test_flatten_annotations () =
  let tr = trace () in
  let rows = rows_of tr 2 in
  Alcotest.(check int) "four flattened rows" 4 (List.length rows);
  List.iter
    (fun (r : Whynot.Tracing.trow) ->
      Alcotest.(check bool) "flatten retains element rows" true
        r.Whynot.Tracing.retained)
    rows;
  let consistent = List.filter (fun (r : Whynot.Tracing.trow) -> r.Whynot.Tracing.consistent) rows in
  Alcotest.(check int) "re-validation: only Sue/NY row" 1 (List.length consistent);
  Alcotest.(check string) "it is the NY row" "\"NY\""
    (field_str "city" (List.hd consistent))

(* Figure 6: the selection keeps everything in the relaxed stream; only
   year ≥ 2019 rows are retained. *)
let test_selection_annotations () =
  let tr = trace () in
  let rows = rows_of tr 3 in
  Alcotest.(check int) "selection passes all rows through" 4 (List.length rows);
  let retained = List.filter (fun (r : Whynot.Tracing.trow) -> r.Whynot.Tracing.retained) rows in
  (* only Sue's LA-2019 element is in address2 with year ≥ 2019 *)
  Alcotest.(check int) "one row satisfies θ" 1 (List.length retained);
  let inconsistent_retained =
    List.filter (fun (r : Whynot.Tracing.trow) -> r.Whynot.Tracing.consistent) retained
  in
  Alcotest.(check int) "the retained rows are not the NY row" 0
    (List.length inconsistent_retained)

(* The empty-address padding of the outer-flatten relaxation. *)
let test_flatten_padding () =
  let db =
    Relation.Db.of_list
      [
        ( "person",
          Relation.of_tuples ~schema:person_schema
            [ person "Solo" [ addr "NY" 2019 ] [] ] );
      ]
  in
  let bt = Whynot.Backtrace.run ~env query missing in
  let tr = Whynot.Tracing.run ~env db sa0 bt in
  let rows = rows_of tr 2 in
  Alcotest.(check int) "one padded row" 1 (List.length rows);
  let r = List.hd rows in
  Alcotest.(check bool) "padding is not retained by the inner flatten" false
    r.Whynot.Tracing.retained;
  Alcotest.(check bool) "padding does not survive" false r.Whynot.Tracing.surviving;
  Alcotest.(check string) "padded city is null" "⊥" (field_str "city" r)

(* Surviving rows of the root reproduce the original result. *)
let test_surviving_is_original () =
  let tr = trace () in
  let surviving =
    List.filter
      (fun (r : Whynot.Tracing.trow) -> r.Whynot.Tracing.surviving)
      (Whynot.Tracing.root_rows tr)
  in
  let original = Eval.eval db query in
  Alcotest.(check int) "same cardinality" (Relation.cardinal original)
    (List.length surviving);
  List.iter
    (fun (r : Whynot.Tracing.trow) ->
      Alcotest.(check bool) "surviving root row is an original tuple" true
        (List.exists (Value.equal r.Whynot.Tracing.data) (Relation.tuples original)))
    surviving

(* Lineage: parents always point to rows of the child operator. *)
let test_lineage_well_formed () =
  let tr = trace () in
  List.iter
    (fun (ot : Whynot.Tracing.op_trace) ->
      List.iter
        (fun (r : Whynot.Tracing.trow) ->
          List.iter
            (fun pid ->
              Alcotest.(check bool) "parent exists" true
                (Whynot.Tracing.find_row tr pid <> None))
            r.Whynot.Tracing.parents)
        (Whynot.Tracing.rows ot))
    tr.Whynot.Tracing.ops

(* Ablation: without re-validation, all of Sue's flattened rows count as
   consistent (they descend from the compatible tuple) — the false
   positives of prior lineage-based approaches. *)
let test_ablation_no_revalidation () =
  let tr = trace ~revalidate:false () in
  let rows = rows_of tr 2 in
  let consistent = List.filter (fun (r : Whynot.Tracing.trow) -> r.Whynot.Tracing.consistent) rows in
  Alcotest.(check int) "both Sue rows flagged without re-validation" 2
    (List.length consistent)

(* Union and difference end to end: a tuple reachable through either
   union branch yields the branch's failure set; difference tracks
   removal. *)
let test_union_branches () =
  let schema = Vtype.relation [ ("a", Vtype.TInt) ] in
  let db2 =
    Relation.Db.of_list
      [
        ("u", Relation.of_tuples ~schema [ Value.Tuple [ ("a", Value.Int 1) ] ]);
        ("v", Relation.of_tuples ~schema [ Value.Tuple [ ("a", Value.Int 1) ] ]);
      ]
  in
  let g = Query.Gen.create () in
  let q =
    Query.union ~id:5 g
      (Query.select ~id:3 g
         (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 2))
         (Query.table ~id:1 g "u"))
      (Query.select ~id:4 g
         (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 3))
         (Query.table ~id:2 g "v"))
  in
  let phi =
    Whynot.Question.make ~query:q ~db:db2
      ~missing:(Nip.tup [ ("a", Nip.int 1) ])
  in
  let result = Whynot.Pipeline.explain ~use_sas:false phi in
  let sets =
    List.sort compare (Whynot.Pipeline.explanation_sets result)
  in
  Alcotest.(check (list (list int))) "either branch's selection fixes it"
    [ [ 3 ]; [ 4 ] ] sets

let test_difference_blames_nothing_spurious () =
  let schema = Vtype.relation [ ("a", Vtype.TInt) ] in
  let db2 =
    Relation.Db.of_list
      [
        ( "u",
          Relation.of_tuples ~schema
            [ Value.Tuple [ ("a", Value.Int 1) ]; Value.Tuple [ ("a", Value.Int 2) ] ]
        );
        ("v", Relation.of_tuples ~schema [ Value.Tuple [ ("a", Value.Int 1) ] ]);
      ]
  in
  let g = Query.Gen.create () in
  (* σ_{a≥2}(u − v): why is a=1 missing?  Fixing the selection alone is
     not enough (the difference removes it), and the difference is not
     reparameterizable — the heuristic must not return the σ alone as a
     complete fix.  Under the relaxation the difference marks the removed
     occurrence as not retained, so no consistent derivation exists and
     the pipeline stays silent rather than answering incorrectly. *)
  let q =
    Query.select ~id:4 g
      (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 2))
      (Query.diff ~id:3 g (Query.table ~id:1 g "u") (Query.table ~id:2 g "v"))
  in
  let phi =
    Whynot.Question.make ~query:q ~db:db2
      ~missing:(Nip.tup [ ("a", Nip.int 1) ])
  in
  let result = Whynot.Pipeline.explain ~use_sas:false phi in
  List.iter
    (fun set ->
      Alcotest.(check bool) "difference never blamed" false (List.mem 3 set))
    (Whynot.Pipeline.explanation_sets result)

(* Aggregate ranges: interval satisfiability used for optimistic
   consistency. *)
let test_interval_satisfies () =
  let open Whynot.Tracing in
  Alcotest.(check bool) "Gt inside" true
    (interval_satisfies Expr.Gt (Value.Int 3) (0., 5.));
  Alcotest.(check bool) "Gt outside" false
    (interval_satisfies Expr.Gt (Value.Int 7) (0., 5.));
  Alcotest.(check bool) "Eq inside" true
    (interval_satisfies Expr.Eq (Value.Int 0) (0., 5.));
  Alcotest.(check bool) "Lt at bound" false
    (interval_satisfies Expr.Lt (Value.Int 0) (0., 5.));
  Alcotest.(check bool) "Le at bound" true
    (interval_satisfies Expr.Le (Value.Int 0) (0., 5.))

let () =
  Alcotest.run "tracing"
    [
      ( "running-example-annotations",
        [
          Alcotest.test_case "table access (Fig. 4)" `Quick test_table_annotations;
          Alcotest.test_case "flatten (Fig. 5)" `Quick test_flatten_annotations;
          Alcotest.test_case "selection (Fig. 6)" `Quick test_selection_annotations;
          Alcotest.test_case "outer-flatten padding" `Quick test_flatten_padding;
          Alcotest.test_case "surviving = original" `Quick test_surviving_is_original;
          Alcotest.test_case "lineage well-formed" `Quick test_lineage_well_formed;
        ] );
      ( "set-operations",
        [
          Alcotest.test_case "union branches" `Quick test_union_branches;
          Alcotest.test_case "difference" `Quick test_difference_blames_nothing_spurious;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "no re-validation" `Quick test_ablation_no_revalidation;
        ] );
      ( "intervals",
        [ Alcotest.test_case "satisfiability" `Quick test_interval_satisfies ] );
    ]
