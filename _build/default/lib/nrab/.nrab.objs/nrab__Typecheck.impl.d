lib/nrab/typecheck.ml: Agg Expr Fmt List Nested Query String Value Vtype
