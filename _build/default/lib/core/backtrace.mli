(** Schema backtracing (Section 5.1).

    Starting from the missing-answer NIP over the output schema of Q, the
    query is walked top-down and the NIP is rewritten over the schema of
    every operator's output, ending in one NIP per input table (the
    paper's T̄).  The per-operator NIPs are what data tracing re-validates
    intermediate tuples against; the table NIPs identify compatible input
    tuples. *)

open Nrab

type t = {
  op_nips : (int * Nip.t) list;  (** NIP over each operator's output *)
  table_nips : (string * Nip.t) list;
      (** one entry per table-access operator *)
}

(** NIP at an operator's output; [Any] for unknown ids. *)
val op_nip : t -> int -> Nip.t

(** Compatible-tuple NIP of a table; [Any] for unknown tables. *)
val table_nip : t -> string -> Nip.t

val run : env:Typecheck.env -> Query.t -> Nip.t -> t
