(* The mini-DISC engine must agree with the reference evaluator on every
   operator, for several partition counts, including randomized data. *)

open Nested
open Nrab

let v_int i = Value.Int i
let v_str s = Value.String s
let tup = Value.tuple

let mk_db ~seed ~rows =
  let g = Datagen.Prng.create ~seed in
  let r_schema =
    Vtype.relation
      [
        ("a", Vtype.TInt);
        ("b", Vtype.TString);
        ("kids", Vtype.relation [ ("k", Vtype.TInt) ]);
      ]
  in
  let s_schema = Vtype.relation [ ("c", Vtype.TInt); ("d", Vtype.TString) ] in
  let r_rows =
    List.init rows (fun _ ->
        tup
          [
            ("a", v_int (Datagen.Prng.int g 5));
            ("b", v_str (Datagen.Prng.pick g [ "x"; "y"; "z" ]));
            ( "kids",
              Value.bag_of_list
                (List.init (Datagen.Prng.int g 3) (fun _ ->
                     tup [ ("k", v_int (Datagen.Prng.int g 4)) ])) );
          ])
  in
  let s_rows =
    List.init rows (fun _ ->
        tup
          [
            ("c", v_int (Datagen.Prng.int g 5));
            ("d", v_str (Datagen.Prng.pick g [ "u"; "v" ]));
          ])
  in
  Relation.Db.of_list
    [
      ("r", Relation.of_tuples ~schema:r_schema r_rows);
      ("s", Relation.of_tuples ~schema:s_schema s_rows);
    ]

(* A zoo of queries covering every operator kind. *)
let queries () =
  let q name build = (name, build (Query.Gen.create ())) in
  let a_eq_c = Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.attr "c") in
  [
    q "select" (fun g ->
        Query.select g (Expr.Cmp (Expr.Gt, Expr.attr "a", Expr.int 2)) (Query.table g "r"));
    q "project" (fun g -> Query.project_attrs g [ "a" ] (Query.table g "r"));
    q "computed projection" (fun g ->
        Query.project g [ ("a2", Expr.(Mul (attr "a", attr "a"))) ] (Query.table g "r"));
    q "rename" (fun g -> Query.rename g [ ("alpha", "a") ] (Query.table g "r"));
    q "inner join" (fun g ->
        Query.join g Query.Inner a_eq_c (Query.table g "r") (Query.table g "s"));
    q "left join" (fun g ->
        Query.join g Query.Left a_eq_c (Query.table g "r") (Query.table g "s"));
    q "right join" (fun g ->
        Query.join g Query.Right a_eq_c (Query.table g "r") (Query.table g "s"));
    q "full join" (fun g ->
        Query.join g Query.Full a_eq_c (Query.table g "r") (Query.table g "s"));
    q "theta join" (fun g ->
        Query.join g Query.Inner
          (Expr.Cmp (Expr.Lt, Expr.attr "a", Expr.attr "c"))
          (Query.table g "r") (Query.table g "s"));
    (* equi-key plus residual conjunct: exercises the hash-join kernel's
       residual predicate on every join kind *)
    q "residual inner join" (fun g ->
        Query.join g Query.Inner
          (Expr.And (a_eq_c, Expr.Cmp (Expr.Neq, Expr.attr "b", Expr.str "x")))
          (Query.table g "r") (Query.table g "s"));
    q "residual left join" (fun g ->
        Query.join g Query.Left
          (Expr.And (a_eq_c, Expr.Cmp (Expr.Eq, Expr.attr "d", Expr.str "u")))
          (Query.table g "r") (Query.table g "s"));
    q "residual right join" (fun g ->
        Query.join g Query.Right
          (Expr.And (a_eq_c, Expr.Cmp (Expr.Gt, Expr.attr "a", Expr.int 1)))
          (Query.table g "r") (Query.table g "s"));
    q "residual full join" (fun g ->
        Query.join g Query.Full
          (Expr.And
             ( a_eq_c,
               Expr.Or
                 ( Expr.Cmp (Expr.Eq, Expr.attr "b", Expr.str "y"),
                   Expr.Cmp (Expr.Eq, Expr.attr "d", Expr.str "v") ) ))
          (Query.table g "r") (Query.table g "s"));
    (* two equi-key pairs; b and d have disjoint domains, so no pair
       matches and every row of both sides must come back padded *)
    q "multi-key full join" (fun g ->
        Query.join g Query.Full
          (Expr.And
             (a_eq_c, Expr.Cmp (Expr.Eq, Expr.attr "b", Expr.attr "d")))
          (Query.table g "r") (Query.table g "s"));
    (* the left join pads unmatched rows with Null c; those rows must
       not hash-match anything downstream (Null = Null is not true) *)
    q "null-key join" (fun g ->
        Query.join g Query.Inner
          (Expr.Cmp (Expr.Eq, Expr.attr "c", Expr.attr "k2"))
          (Query.join g Query.Left a_eq_c (Query.table g "r") (Query.table g "s"))
          (Query.rename g
             [ ("k2", "c") ]
             (Query.project_attrs g [ "c" ] (Query.table g "s"))));
    q "union" (fun g -> Query.union g (Query.table g "r") (Query.table g "r"));
    q "diff" (fun g ->
        Query.diff g (Query.table g "r")
          (Query.select g (Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.int 0)) (Query.table g "r")));
    q "dedup" (fun g -> Query.dedup g (Query.project_attrs g [ "b" ] (Query.table g "r")));
    q "inner flatten" (fun g -> Query.flatten_inner g "kids" (Query.table g "r"));
    q "outer flatten" (fun g -> Query.flatten_outer g "kids" (Query.table g "r"));
    q "nest" (fun g ->
        Query.nest_rel g [ "a" ] ~into:"as_"
          (Query.project_attrs g [ "a"; "b" ] (Query.table g "r")));
    q "nest tuple" (fun g ->
        Query.nest_tuple g [ "a"; "b" ] ~into:"ab"
          (Query.project_attrs g [ "a"; "b" ] (Query.table g "r")));
    q "agg tuple" (fun g ->
        Query.agg_tuple g Agg.Count ~over:"kids" ~into:"cnt" (Query.table g "r"));
    q "group agg" (fun g ->
        Query.group_agg g [ "b" ]
          [ (Agg.Sum, Some "a", "total"); (Agg.Count, None, "n") ]
          (Query.table g "r"));
    q "pipeline" (fun g ->
        Query.group_agg g [ "b" ]
          [ (Agg.Count, None, "n") ]
          (Query.select g
             (Expr.Cmp (Expr.Ge, Expr.attr "k", Expr.int 1))
             (Query.flatten_inner g "kids" (Query.table g "r"))));
    q "join then nest" (fun g ->
        Query.nest_rel g [ "d" ] ~into:"ds"
          (Query.project_attrs g [ "a"; "d" ]
             (Query.join g Query.Left a_eq_c (Query.table g "r") (Query.table g "s"))));
  ]

let check_equivalence ?(parallel = false) ~partitions ~seed () =
  let db = mk_db ~seed ~rows:25 in
  List.iter
    (fun (name, query) ->
      let expected = Eval.eval db query in
      let actual, _stats =
        Engine.Exec.run
          ~config:
            {
              Engine.Exec.partitions;
              parallel;
              retry = Engine.Fault.no_retry;
            }
          db query
      in
      Alcotest.(check string)
        (Fmt.str "%s (partitions=%d)" name partitions)
        (Value.to_string (Relation.data expected))
        (Value.to_string (Relation.data actual)))
    (queries ())

let test_stats_recorded () =
  let db = mk_db ~seed:3 ~rows:30 in
  let g = Query.Gen.create () in
  let query =
    Query.group_agg g [ "b" ] [ (Agg.Count, None, "n") ] (Query.table g "r")
  in
  let _, stats = Engine.Exec.run db query in
  Alcotest.(check bool) "aggregation shuffles" true (Engine.Stats.total_shuffled stats >= 0);
  Alcotest.(check bool) "rows recorded" true (Engine.Stats.total_output stats > 0)

let test_distribute_gather () =
  let rows = List.init 17 (fun i -> v_int i) in
  let d = Engine.Dataset.distribute ~partitions:4 rows in
  Alcotest.(check int) "partitions" 4 (Engine.Dataset.partition_count d);
  Alcotest.(check int) "cardinality preserved" 17 (Engine.Dataset.cardinal d);
  let gathered, moved = Engine.Dataset.gather d in
  Alcotest.(check int) "gather to one" 1 (Engine.Dataset.partition_count gathered);
  Alcotest.(check int) "gather moves everything" 17 moved

let test_shuffle_colocates () =
  let rows = List.init 40 (fun i -> tup [ ("k", v_int (i mod 4)) ]) in
  let d = Engine.Dataset.distribute ~partitions:4 rows in
  let shuffled, _ =
    Engine.Dataset.shuffle_by ~partitions:4
      (fun t -> Option.get (Value.field "k" t))
      d
  in
  (* all rows with the same key must be in the same partition *)
  Array.iter
    (fun part ->
      let keys =
        List.sort_uniq Value.compare
          (List.map (fun t -> Option.get (Value.field "k" t)) part)
      in
      ignore keys)
    (Engine.Dataset.partitions shuffled);
  let key_partition = Hashtbl.create 8 in
  Array.iteri
    (fun pi part ->
      List.iter
        (fun t ->
          let k = Option.get (Value.field "k" t) in
          match Hashtbl.find_opt key_partition k with
          | Some pj -> Alcotest.(check int) "key colocated" pj pi
          | None -> Hashtbl.replace key_partition k pi)
        part)
    (Engine.Dataset.partitions shuffled)

(* --- physical-plan analysis --- *)

let test_plan_stages () =
  let db = mk_db ~seed:1 ~rows:5 in
  let env = Eval.schema_env db in
  let g = Query.Gen.create () in
  (* σ and flatten are narrow; groupby shuffles; equi-join shuffles *)
  let q =
    Query.group_agg g [ "b" ]
      [ (Agg.Count, None, "n") ]
      (Query.join g Query.Inner
         (Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.attr "c"))
         (Query.select g Expr.True (Query.table g "r"))
         (Query.table g "s"))
  in
  let plan = Engine.Plan.analyze ~env q in
  Alcotest.(check int) "three stages (scan, join, aggregate)" 3
    (Engine.Plan.stage_count plan);
  (match plan.Engine.Plan.movement with
  | Engine.Plan.Shuffle key -> Alcotest.(check string) "group key" "b" key
  | _ -> Alcotest.fail "group-agg must shuffle");
  let join_node = List.hd plan.Engine.Plan.inputs in
  match join_node.Engine.Plan.movement with
  | Engine.Plan.Shuffle key -> Alcotest.(check string) "join key" "a" key
  | _ -> Alcotest.fail "equi-join must shuffle"

let test_plan_gather_on_theta_join () =
  let db = mk_db ~seed:1 ~rows:5 in
  let env = Eval.schema_env db in
  let g = Query.Gen.create () in
  let q =
    Query.join g Query.Inner
      (Expr.Cmp (Expr.Lt, Expr.attr "a", Expr.attr "c"))
      (Query.table g "r") (Query.table g "s")
  in
  let plan = Engine.Plan.analyze ~env q in
  Alcotest.(check string) "theta join gathers" "gather"
    (Engine.Plan.movement_to_string plan.Engine.Plan.movement)

let test_plan_narrow_pipeline () =
  let db = mk_db ~seed:1 ~rows:5 in
  let env = Eval.schema_env db in
  let g = Query.Gen.create () in
  let q =
    Query.project_attrs g [ "a" ]
      (Query.select g Expr.True
         (Query.flatten_inner g "kids" (Query.table g "r")))
  in
  let plan = Engine.Plan.analyze ~env q in
  Alcotest.(check int) "single stage" 1 (Engine.Plan.stage_count plan)

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "1 partition" `Quick (check_equivalence ~partitions:1 ~seed:11);
          Alcotest.test_case "4 partitions" `Quick (check_equivalence ~partitions:4 ~seed:12);
          Alcotest.test_case "7 partitions" `Quick (check_equivalence ~partitions:7 ~seed:13);
          Alcotest.test_case "4 partitions, parallel domains" `Quick
            (check_equivalence ~parallel:true ~partitions:4 ~seed:14);
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "stats" `Quick test_stats_recorded;
          Alcotest.test_case "distribute/gather" `Quick test_distribute_gather;
          Alcotest.test_case "shuffle colocates keys" `Quick test_shuffle_colocates;
        ] );
      ( "plan",
        [
          Alcotest.test_case "stage assignment" `Quick test_plan_stages;
          Alcotest.test_case "theta join gathers" `Quick test_plan_gather_on_theta_join;
          Alcotest.test_case "narrow pipeline" `Quick test_plan_narrow_pipeline;
        ] );
    ]
