(** Single-flight coalescing — a keyed latch table.

    [run t key f] executes [f] at most once per key at a time: the first
    caller for a key becomes the {e leader} and runs [f]; callers
    arriving while the leader is still running become {e followers} and
    block until the leader finishes, then receive the leader's outcome
    (value or exception — a failed leader releases its followers with
    the error, never leaves them hanging).  The entry is removed when
    the leader finishes, so a later request for the same key computes
    afresh (the caller is expected to consult a cache first).

    This is the thundering-herd guard in front of the server's explain
    and handle caches: N concurrent misses on one fingerprint cost one
    pipeline execution, not N.

    Leader/follower/failure counts are mirrored into {!Obs.Metrics} as
    [serve.inflight.<name>.{leaders,coalesced,failures}]. *)

type 'v t

val create : ?name:string -> unit -> 'v t

(** A follower carries the leader's ambient {!Obs.Trace_context} (as of
    entry creation) — the serve layer logs it so a coalesced request's
    record names whose execution it rode. *)
type role = Leader | Follower of { leader_trace : string option }

(** [run t key f] — see the module header.  The result is the leader's
    [f ()] outcome; [Error e] when it raised [e]. *)
val run : 'v t -> string -> (unit -> 'v) -> role * ('v, exn) result

(** Keys with a computation currently in flight. *)
val active : 'v t -> int

type stats = {
  leaders : int;  (** computations actually executed *)
  coalesced : int;  (** callers served by somebody else's execution *)
  failures : int;  (** leader executions that raised *)
}

val stats : 'v t -> stats
