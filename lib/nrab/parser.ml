(* Surface syntax for NRAB queries, predicates, and expressions, plus
   printers producing the same syntax (round-trip tested).

   Queries are s-expressions:

     (nest (name) nList
       (project (name city)
         (select (>= year 2019)
           (flatten-inner address2 (table person)))))

   See [query_of_sexp] below for the full grammar. *)

open Nested

exception Parse_error = Sexp.Parse_error

let fail = Sexp.fail

(* --- expressions --- *)

let rec expr_of_sexp (s : Sexp.t) : Expr.t =
  match s with
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some i -> Expr.int i
    | None -> (
      match float_of_string_opt a with
      | Some f when String.contains a '.' -> Expr.flt f
      | _ ->
        if String.length a >= 1 && a.[0] = '\'' then
          (* 'quoted atoms are string constants *)
          Expr.str (String.sub a 1 (String.length a - 1))
        else Expr.attr a))
  | Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ] -> Expr.str s
  | Sexp.List [ Sexp.Atom "bool"; Sexp.Atom (("true" | "false") as b) ] ->
    Expr.const (Value.Bool (String.equal b "true"))
  | Sexp.List [ Sexp.Atom op; a; b ] -> (
    let ea = expr_of_sexp a and eb = expr_of_sexp b in
    match op with
    | "+" -> Expr.Add (ea, eb)
    | "-" -> Expr.Sub (ea, eb)
    | "*" -> Expr.Mul (ea, eb)
    | "/" -> Expr.Div (ea, eb)
    | other -> fail "unknown expression operator %s" other)
  | other -> fail "invalid expression %s" (Sexp.to_string other)

let rec expr_to_sexp (e : Expr.t) : Sexp.t =
  match e with
  | Expr.Const (Value.Int i) -> Sexp.Atom (string_of_int i)
  | Expr.Const (Value.Float f) -> Sexp.Atom (Fmt.str "%F" f)
  | Expr.Const (Value.String s) -> Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ]
  | Expr.Const (Value.Bool b) ->
    Sexp.List [ Sexp.Atom "bool"; Sexp.Atom (string_of_bool b) ]
  | Expr.Const v -> fail "cannot print constant %a" Value.pp v
  | Expr.Attr a -> Sexp.Atom a
  | Expr.Add (a, b) -> Sexp.List [ Sexp.Atom "+"; expr_to_sexp a; expr_to_sexp b ]
  | Expr.Sub (a, b) -> Sexp.List [ Sexp.Atom "-"; expr_to_sexp a; expr_to_sexp b ]
  | Expr.Mul (a, b) -> Sexp.List [ Sexp.Atom "*"; expr_to_sexp a; expr_to_sexp b ]
  | Expr.Div (a, b) -> Sexp.List [ Sexp.Atom "/"; expr_to_sexp a; expr_to_sexp b ]

(* --- predicates --- *)

let cmp_of_string = function
  | "=" -> Some Expr.Eq
  | "!=" -> Some Expr.Neq
  | "<" -> Some Expr.Lt
  | "<=" -> Some Expr.Le
  | ">" -> Some Expr.Gt
  | ">=" -> Some Expr.Ge
  | _ -> None

let cmp_to_string = function
  | Expr.Eq -> "="
  | Expr.Neq -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let rec pred_of_sexp (s : Sexp.t) : Expr.pred =
  match s with
  | Sexp.Atom "true" -> Expr.True
  | Sexp.Atom "false" -> Expr.False
  | Sexp.List [ Sexp.Atom "and"; a; b ] -> Expr.And (pred_of_sexp a, pred_of_sexp b)
  | Sexp.List [ Sexp.Atom "or"; a; b ] -> Expr.Or (pred_of_sexp a, pred_of_sexp b)
  | Sexp.List [ Sexp.Atom "not"; a ] -> Expr.Not (pred_of_sexp a)
  | Sexp.List [ Sexp.Atom "is-null"; e ] -> Expr.IsNull (expr_of_sexp e)
  | Sexp.List [ Sexp.Atom "not-null"; e ] -> Expr.IsNotNull (expr_of_sexp e)
  | Sexp.List [ Sexp.Atom "contains"; e; Sexp.Atom needle ] ->
    Expr.Contains (expr_of_sexp e, needle)
  | Sexp.List [ Sexp.Atom op; a; b ] -> (
    match cmp_of_string op with
    | Some c -> Expr.Cmp (c, expr_of_sexp a, expr_of_sexp b)
    | None -> fail "unknown predicate operator %s" op)
  | other -> fail "invalid predicate %s" (Sexp.to_string other)

let rec pred_to_sexp (p : Expr.pred) : Sexp.t =
  match p with
  | Expr.True -> Sexp.Atom "true"
  | Expr.False -> Sexp.Atom "false"
  | Expr.And (a, b) -> Sexp.List [ Sexp.Atom "and"; pred_to_sexp a; pred_to_sexp b ]
  | Expr.Or (a, b) -> Sexp.List [ Sexp.Atom "or"; pred_to_sexp a; pred_to_sexp b ]
  | Expr.Not a -> Sexp.List [ Sexp.Atom "not"; pred_to_sexp a ]
  | Expr.IsNull e -> Sexp.List [ Sexp.Atom "is-null"; expr_to_sexp e ]
  | Expr.IsNotNull e -> Sexp.List [ Sexp.Atom "not-null"; expr_to_sexp e ]
  | Expr.Contains (e, needle) ->
    Sexp.List [ Sexp.Atom "contains"; expr_to_sexp e; Sexp.Atom needle ]
  | Expr.Cmp (c, a, b) ->
    Sexp.List [ Sexp.Atom (cmp_to_string c); expr_to_sexp a; expr_to_sexp b ]

(* --- queries --- *)

(* (label, attr) pairs for nest/groupby attribute lists: a bare NAME
   stands for (NAME NAME); a (LABEL NAME) pair relabels the attribute in
   the output — the printable form of [Query.nest_rel_labeled] and
   friends. *)
let pairs_of_sexp (s : Sexp.t) : (string * string) list =
  let item = function
    | Sexp.Atom a -> (a, a)
    | Sexp.List [ Sexp.Atom label; Sexp.Atom attr ] -> (label, attr)
    | other -> fail "expected name or (label name), got %s" (Sexp.to_string other)
  in
  match s with Sexp.List els -> List.map item els | atom -> [ item atom ]

let pairs_to_sexp (pairs : (string * string) list) : Sexp.t =
  Sexp.List
    (List.map
       (fun (label, attr) ->
         if String.equal label attr then Sexp.Atom attr
         else Sexp.List [ Sexp.Atom label; Sexp.Atom attr ])
       pairs)

let agg_fn_of_string = function
  | "sum" -> Agg.Sum
  | "count" -> Agg.Count
  | "count-distinct" -> Agg.Count_distinct
  | "avg" -> Agg.Avg
  | "min" -> Agg.Min
  | "max" -> Agg.Max
  | other -> fail "unknown aggregation function %s" other

let agg_fn_to_string = function
  | Agg.Sum -> "sum"
  | Agg.Count -> "count"
  | Agg.Count_distinct -> "count-distinct"
  | Agg.Avg -> "avg"
  | Agg.Min -> "min"
  | Agg.Max -> "max"

let join_kind_of_string = function
  | "inner" -> Query.Inner
  | "left" -> Query.Left
  | "right" -> Query.Right
  | "full" -> Query.Full
  | other -> fail "unknown join kind %s" other

let join_kind_to_string = function
  | Query.Inner -> "inner"
  | Query.Left -> "left"
  | Query.Right -> "right"
  | Query.Full -> "full"

let query_of_sexp ?(gen = Query.Gen.create ()) (s : Sexp.t) : Query.t =
  let rec go (s : Sexp.t) : Query.t =
    match s with
    | Sexp.List [ Sexp.Atom "table"; Sexp.Atom name ] -> Query.table gen name
    | Sexp.List [ Sexp.Atom "select"; p; q ] ->
      Query.select gen (pred_of_sexp p) (go q)
    | Sexp.List [ Sexp.Atom "project"; Sexp.List cols; q ] ->
      let col = function
        | Sexp.Atom a -> (a, Expr.attr a)
        | Sexp.List [ Sexp.Atom name; e ] -> (name, expr_of_sexp e)
        | other -> fail "invalid projection column %s" (Sexp.to_string other)
      in
      Query.project gen (List.map col cols) (go q)
    | Sexp.List [ Sexp.Atom "rename"; Sexp.List pairs; q ] ->
      let pair = function
        | Sexp.List [ Sexp.Atom fresh; Sexp.Atom old ] -> (fresh, old)
        | other -> fail "invalid rename pair %s" (Sexp.to_string other)
      in
      Query.rename gen (List.map pair pairs) (go q)
    | Sexp.List [ Sexp.Atom "join"; Sexp.Atom kind; p; l; r ] ->
      Query.join gen (join_kind_of_string kind) (pred_of_sexp p) (go l) (go r)
    | Sexp.List [ Sexp.Atom "product"; l; r ] -> Query.product gen (go l) (go r)
    | Sexp.List [ Sexp.Atom "union"; l; r ] -> Query.union gen (go l) (go r)
    | Sexp.List [ Sexp.Atom "diff"; l; r ] -> Query.diff gen (go l) (go r)
    | Sexp.List [ Sexp.Atom "dedup"; q ] -> Query.dedup gen (go q)
    | Sexp.List [ Sexp.Atom "flatten-tuple"; Sexp.Atom a; q ] ->
      Query.flatten_tuple gen a (go q)
    | Sexp.List [ Sexp.Atom "flatten-inner"; Sexp.Atom a; q ] ->
      Query.flatten_inner gen a (go q)
    | Sexp.List [ Sexp.Atom "flatten-outer"; Sexp.Atom a; q ] ->
      Query.flatten_outer gen a (go q)
    | Sexp.List [ Sexp.Atom "nest-tuple"; attrs; Sexp.Atom into; q ] ->
      Query.nest_tuple_labeled gen (pairs_of_sexp attrs) ~into (go q)
    | Sexp.List [ Sexp.Atom "nest"; attrs; Sexp.Atom into; q ] ->
      Query.nest_rel_labeled gen (pairs_of_sexp attrs) ~into (go q)
    | Sexp.List [ Sexp.Atom "agg"; Sexp.Atom fn; Sexp.Atom over; Sexp.Atom into; q ]
      ->
      Query.agg_tuple gen (agg_fn_of_string fn) ~over ~into (go q)
    | Sexp.List [ Sexp.Atom "groupby"; group; Sexp.List aggs; q ] ->
      let agg = function
        | Sexp.List [ Sexp.Atom fn; Sexp.Atom "*"; Sexp.Atom out ] ->
          (agg_fn_of_string fn, None, out)
        | Sexp.List [ Sexp.Atom fn; Sexp.Atom attr; Sexp.Atom out ] ->
          (agg_fn_of_string fn, Some attr, out)
        | other -> fail "invalid aggregate %s" (Sexp.to_string other)
      in
      Query.group_agg_labeled gen (pairs_of_sexp group) (List.map agg aggs) (go q)
    | other -> fail "invalid query %s" (Sexp.to_string other)
  in
  go s

let query_to_sexp (q : Query.t) : Sexp.t =
  let atom a = Sexp.Atom a in
  let rec go (q : Query.t) : Sexp.t =
    match q.Query.node, q.Query.children with
    | Query.Table name, [] -> Sexp.List [ atom "table"; atom name ]
    | Query.Select p, [ c ] -> Sexp.List [ atom "select"; pred_to_sexp p; go c ]
    | Query.Project cols, [ c ] ->
      let col (name, e) =
        match e with
        | Expr.Attr a when String.equal a name -> atom name
        | _ -> Sexp.List [ atom name; expr_to_sexp e ]
      in
      Sexp.List [ atom "project"; Sexp.List (List.map col cols); go c ]
    | Query.Rename pairs, [ c ] ->
      Sexp.List
        [
          atom "rename";
          Sexp.List (List.map (fun (f, o) -> Sexp.List [ atom f; atom o ]) pairs);
          go c;
        ]
    | Query.Join (kind, p), [ l; r ] ->
      Sexp.List
        [ atom "join"; atom (join_kind_to_string kind); pred_to_sexp p; go l; go r ]
    | Query.Product, [ l; r ] -> Sexp.List [ atom "product"; go l; go r ]
    | Query.Union, [ l; r ] -> Sexp.List [ atom "union"; go l; go r ]
    | Query.Diff, [ l; r ] -> Sexp.List [ atom "diff"; go l; go r ]
    | Query.Dedup, [ c ] -> Sexp.List [ atom "dedup"; go c ]
    | Query.Flatten_tuple a, [ c ] -> Sexp.List [ atom "flatten-tuple"; atom a; go c ]
    | Query.Flatten (Query.Flat_inner, a), [ c ] ->
      Sexp.List [ atom "flatten-inner"; atom a; go c ]
    | Query.Flatten (Query.Flat_outer, a), [ c ] ->
      Sexp.List [ atom "flatten-outer"; atom a; go c ]
    | Query.Nest_tuple (pairs, into), [ c ] ->
      Sexp.List [ atom "nest-tuple"; pairs_to_sexp pairs; atom into; go c ]
    | Query.Nest_rel (pairs, into), [ c ] ->
      Sexp.List [ atom "nest"; pairs_to_sexp pairs; atom into; go c ]
    | Query.Agg_tuple (fn, over, into), [ c ] ->
      Sexp.List [ atom "agg"; atom (agg_fn_to_string fn); atom over; atom into; go c ]
    | Query.Group_agg (group, aggs), [ c ] ->
      let agg (fn, a, out) =
        Sexp.List
          [
            atom (agg_fn_to_string fn);
            atom (match a with Some a -> a | None -> "*");
            atom out;
          ]
      in
      Sexp.List
        [ atom "groupby"; pairs_to_sexp group; Sexp.List (List.map agg aggs); go c ]
    | _ -> fail "malformed query"
  in
  go q

(* --- entry points --- *)

let query_of_string ?gen (s : string) : Query.t =
  query_of_sexp ?gen (Sexp.of_string s)

let query_to_string (q : Query.t) : string = Sexp.to_string (query_to_sexp q)
let pred_of_string (s : string) : Expr.pred = pred_of_sexp (Sexp.of_string s)
let expr_of_string (s : string) : Expr.t = expr_of_sexp (Sexp.of_string s)
