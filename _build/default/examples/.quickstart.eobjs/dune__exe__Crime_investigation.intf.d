examples/crime_investigation.mli:
