lib/core/question.ml: Eval Fmt List Nested Nip Nrab Query Relation Typecheck Value Vtype
