lib/nrab/sexp.mli: Format
