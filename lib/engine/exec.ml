(* The engine's executor: runs an NRAB plan over partitioned datasets.

   Narrow operators (selection, projection, renaming, flattening, tuple
   nesting, per-tuple aggregation) run partition-local; blocking operators
   (joins, relation nesting, group aggregation, deduplication, difference)
   shuffle by key first, like a DISC system would.  The results agree with
   the reference evaluator [Nrab.Eval] — the test suite checks this. *)

open Nested
open Nrab

exception Engine_error of string

let err fmt = Fmt.kstr (fun m -> raise (Engine_error m)) fmt

type config = { partitions : int; parallel : bool; retry : Fault.policy }

let default_config =
  { partitions = 4; parallel = false; retry = Fault.no_retry }

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

(* Split a join predicate's conjunctive closure into equi-join key
   attribute pairs (left attr, right attr) and the residual predicate
   (the conjuncts that are not equi-key comparisons, [True] if none).
   The hash-join kernel probes by key and evaluates only the residual. *)
let equi_split (lfields : string list) (rfields : string list) (p : Expr.pred)
    : (string * string) list * Expr.pred =
  let rec conjuncts = function
    | Expr.And (a, b) -> conjuncts a @ conjuncts b
    | p -> [ p ]
  in
  let keys, residual =
    List.fold_left
      (fun (keys, residual) c ->
        match c with
        | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Attr b)
          when List.mem a lfields && List.mem b rfields ->
          ((a, b) :: keys, residual)
        | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Attr b)
          when List.mem b lfields && List.mem a rfields ->
          ((b, a) :: keys, residual)
        | c -> (keys, c :: residual))
      ([], []) (conjuncts p)
  in
  let residual =
    match List.rev residual with
    | [] -> Expr.True
    | c :: rest -> List.fold_left (fun acc c -> Expr.And (acc, c)) c rest
  in
  (List.rev keys, residual)

let equi_keys lfields rfields p = fst (equi_split lfields rfields p)

(* Per-row kernels shared by narrow operators.  All of these are staged:
   applying the first argument(s) precomputes the lookup structures once,
   so the per-row closure does no list scans over the parameters. *)

(* Key projection staged over the attribute list: one pass over the
   row's fields instead of one [Value.field] scan per key attribute. *)
let key_of attrs : Value.t -> Value.t =
  let n = List.length attrs in
  let slot = Hashtbl.create (2 * n) in
  List.iteri
    (fun i a -> if not (Hashtbl.mem slot a) then Hashtbl.replace slot a i)
    attrs;
  let attr_arr = Array.of_list attrs in
  fun t ->
    match t with
    | Value.Tuple fields ->
      let found = Array.make (max n 1) None in
      List.iter
        (fun (l, v) ->
          match Hashtbl.find_opt slot l with
          | Some i -> if found.(i) = None then found.(i) <- Some v
          | None -> ())
        fields;
      Value.Tuple
        (List.map
           (fun a ->
             match found.(Hashtbl.find slot a) with
             | Some v -> (a, v)
             | None -> err "engine: unknown key attribute %s" a)
           (Array.to_list attr_arr))
    | _ ->
      Value.Tuple
        (List.map
           (fun a ->
             match Value.field a t with
             | Some v -> (a, v)
             | None -> err "engine: unknown key attribute %s" a)
           attrs)

let project_row cols t =
  Value.Tuple (List.map (fun (name, e) -> (name, Expr.eval t e)) cols)

let rename_label_fn pairs : string -> string =
  let fresh_of = Hashtbl.create (2 * List.length pairs) in
  List.iter
    (fun (fresh, old) ->
      if not (Hashtbl.mem fresh_of old) then Hashtbl.replace fresh_of old fresh)
    pairs;
  fun l ->
    match Hashtbl.find_opt fresh_of l with Some fresh -> fresh | None -> l

let rename_row pairs : Value.t -> Value.t =
  let rename_label = rename_label_fn pairs in
  fun t ->
    match t with
    | Value.Tuple fields ->
      Value.Tuple (List.map (fun (l, v) -> (rename_label l, v)) fields)
    | _ -> err "engine: rename of non-tuple"

let flatten_tuple_row inner_ty a t =
  match Value.field a t with
  | Some (Value.Tuple _ as inner) -> Value.concat_tuples t inner
  | Some Value.Null -> Value.concat_tuples t (Vtype.null_tuple inner_ty)
  | Some _ -> err "engine: tuple flatten of non-tuple attribute %s" a
  | None -> err "engine: unknown attribute %s" a

let flatten_rel_rows kind inner_ty a t =
  let nested = match Value.field a t with Some v -> v | None -> Value.Null in
  let rows =
    match nested with
    | Value.Bag _ -> List.map (Value.concat_tuples t) (Value.expand nested)
    | Value.Null -> []
    | _ -> err "engine: relation flatten of non-bag attribute %s" a
  in
  match rows, kind with
  | [], Query.Flat_outer -> [ Value.concat_tuples t (Vtype.null_tuple inner_ty) ]
  | rows, _ -> rows

let nest_tuple_row pairs c_name : Value.t -> Value.t =
  let nested_attr = Hashtbl.create (2 * List.length pairs) in
  List.iter (fun (_, a) -> Hashtbl.replace nested_attr a ()) pairs;
  fun t ->
    match t with
    | Value.Tuple fields ->
      let rest =
        List.filter (fun (l, _) -> not (Hashtbl.mem nested_attr l)) fields
      in
      let nested =
        List.map
          (fun (label, a) ->
            match List.assoc_opt a fields with
            | Some v -> (label, v)
            | None -> err "engine: unknown attribute %s" a)
          pairs
      in
      Value.Tuple (rest @ [ (c_name, Value.Tuple nested) ])
    | _ -> err "engine: nest_tuple of non-tuple"

let agg_tuple_row fn a b t =
  let values =
    match Value.field a t with
    | Some (Value.Bag _ as bag) ->
      List.map
        (fun v ->
          match v with Value.Tuple [ (_, inner) ] -> inner | other -> other)
        (Value.expand bag)
    | Some Value.Null | None -> []
    | Some _ -> err "engine: per-tuple aggregation of non-bag attribute %s" a
  in
  Value.concat_tuples t (Value.Tuple [ (b, Agg.apply fn values) ])

(* Partition-local join kernel.  With equi-keys this is a hash join: the
   smaller side is indexed by its key tuple and the other side probes,
   evaluating only the residual predicate on each candidate — candidate
   enumeration is lossless because any pair satisfying the full predicate
   agrees on the equi-key conjuncts.  Without keys it degrades to the
   nested loop (the full predicate is then the residual).  Row order
   within a partition is irrelevant: bags are normalized downstream. *)
let join_partition ~keys ~(residual : Expr.pred) ~kind ~lnull ~rnull
    (lrows : Value.t list) (rrows : Value.t list) : Value.t list =
  let matched_left = Hashtbl.create 16 in
  let matched_right = Hashtbl.create 16 in
  let inner =
    match keys with
    | [] ->
      List.concat
        (List.mapi
           (fun li t ->
             List.filter_map
               (fun (ri, u) ->
                 let joined = Value.concat_tuples t u in
                 if Expr.eval_pred joined residual then begin
                   Hashtbl.replace matched_left li ();
                   Hashtbl.replace matched_right ri ();
                   Some joined
                 end
                 else None)
               (List.mapi (fun ri u -> (ri, u)) rrows))
           lrows)
    | keys ->
      let lkey = key_of (List.map fst keys)
      and rkey = key_of (List.map snd keys) in
      (* Key tuples are compared positionally (labels stripped) so that
         the two sides' attribute names do not have to agree.  A key
         containing Null can never satisfy an equality conjunct
         ([Null = Null] is false, as in SQL), so such rows are excluded
         from both build and probe — they surface only as outer pads. *)
      let key_values k t =
        match k t with
        | Value.Tuple fields -> List.map snd fields
        | v -> [ v ]
      in
      let has_null = List.exists (fun v -> v = Value.Null) in
      let build_is_left = List.length lrows <= List.length rrows in
      let build_rows, build_key, probe_rows, probe_key =
        if build_is_left then (lrows, key_values lkey, rrows, key_values rkey)
        else (rrows, key_values rkey, lrows, key_values lkey)
      in
      let index = Hashtbl.create (2 * List.length build_rows) in
      List.iteri
        (fun bi b ->
          let k = build_key b in
          if not (has_null k) then
            Hashtbl.replace index k
              ((bi, b) :: Option.value ~default:[] (Hashtbl.find_opt index k)))
        build_rows;
      let matched_build, matched_probe =
        if build_is_left then (matched_left, matched_right)
        else (matched_right, matched_left)
      in
      List.concat
        (List.mapi
           (fun pi p ->
             List.filter_map
               (fun (bi, b) ->
                 let joined =
                   if build_is_left then Value.concat_tuples b p
                   else Value.concat_tuples p b
                 in
                 if Expr.eval_pred joined residual then begin
                   Hashtbl.replace matched_build bi ();
                   Hashtbl.replace matched_probe pi ();
                   Some joined
                 end
                 else None)
               (Option.value ~default:[]
                  (Hashtbl.find_opt index (probe_key p))))
           probe_rows)
  in
  let left_pad () =
    List.concat
      (List.mapi
         (fun li t ->
           if Hashtbl.mem matched_left li then []
           else [ Value.concat_tuples t rnull ])
         lrows)
  in
  let right_pad () =
    List.concat
      (List.mapi
         (fun ri u ->
           if Hashtbl.mem matched_right ri then []
           else [ Value.concat_tuples lnull u ])
         rrows)
  in
  match kind with
  | Query.Inner -> inner
  | Query.Left -> inner @ left_pad ()
  | Query.Right -> inner @ right_pad ()
  | Query.Full -> inner @ left_pad () @ right_pad ()

(* Group rows of one partition by key. *)
let group_rows (key : Value.t -> Value.t) (rows : Value.t list) :
    (Value.t * Value.t list) list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = key row in
      match Hashtbl.find_opt tbl k with
      | Some rs -> Hashtbl.replace tbl k (row :: rs)
      | None ->
        order := k :: !order;
        Hashtbl.replace tbl k [ row ])
    rows;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let group_by_attrs attrs rows = group_rows (key_of attrs) rows

(* Bag difference on row lists. *)
let diff_rows (l : Value.t list) (r : Value.t list) : Value.t list =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun row ->
      Hashtbl.replace counts row
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts row)))
    r;
  List.filter
    (fun row ->
      match Hashtbl.find_opt counts row with
      | Some n when n > 0 ->
        Hashtbl.replace counts row (n - 1);
        false
      | _ -> true)
    l

(* --- Columnar (vectorized) kernels --------------------------------- *)

(* The engine runs these when the columnar engine is active (the
   default); [WHYNOT_ROW_ENGINE] falls back to the row kernels above.
   Each kernel is multiset-equivalent to its row sibling — row order
   within a partition is irrelevant because bags are normalized
   downstream — and reproduces the row kernel's error behavior. *)

let vectorized () = not (Columnar.row_engine ())

(* Destination hashes for a shuffle keyed by labelled attribute
   projections ([(label, source attr)] pairs), identical to hashing
   [key_of]/group-key tuples row by row.  [strict] missing attributes
   raise like [key_of]; lax ones hash as Null like the group keys. *)
let key_hash_of_pairs (pairs : (string * string) list) ~strict
    (fallback_key : Value.t -> Value.t) (b : Columnar.t) : int array =
  let n = Columnar.length b in
  match Columnar.cols b with
  | Some fields when n > 0 ->
    let kcols =
      List.map
        (fun (label, a) ->
          match List.assoc_opt a fields with
          | Some c -> (label, c)
          | None ->
            if strict then err "engine: unknown key attribute %s" a
            else (label, Columnar.CNull n))
        pairs
    in
    Columnar.hash_col (Columnar.CTuple (n, kcols, None))
  | Some _ -> [||]
  | None ->
    Array.of_list
      (List.map
         (fun row -> Columnar.value_hash (fallback_key row))
         (Columnar.to_rows b))

let whole_row_hash (b : Columnar.t) : int array = Columnar.hash_col b.Columnar.row

(* Duplicate elimination on one partition: first occurrence per
   structural-equality class (integer codes stand in for deep rows). *)
let dedup_cols (b : Columnar.t) : Columnar.t =
  let coder = Columnar.Coder.create () in
  let codes = Columnar.row_codes coder b in
  let seen = Hashtbl.create (2 * Columnar.length b) in
  let keep = ref [] in
  Array.iteri
    (fun i c ->
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.replace seen c ();
        keep := i :: !keep
      end)
    codes;
  Columnar.gather b (Array.of_list (List.rev !keep))

(* Bag difference on one partition pair, multiset semantics like
   [diff_rows]: each right occurrence cancels one left occurrence. *)
let diff_cols (lb : Columnar.t) (rb : Columnar.t) : Columnar.t =
  let coder = Columnar.Coder.create () in
  let lc = Columnar.row_codes coder lb in
  let rc = Columnar.row_codes coder rb in
  let counts = Hashtbl.create (2 * Array.length rc) in
  Array.iter
    (fun c ->
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    rc;
  let keep = ref [] in
  Array.iteri
    (fun i c ->
      match Hashtbl.find_opt counts c with
      | Some n when n > 0 -> Hashtbl.replace counts c (n - 1)
      | _ -> keep := i :: !keep)
    lc;
  Columnar.gather lb (Array.of_list (List.rev !keep))

(* Partition-local hash join over code vectors: build the smaller side's
   key codes into an index, probe with the other side, evaluate only the
   residual on the gathered candidate pairs.  Mirrors [join_partition]
   (build-side choice, Null key exclusion, outer padding) without
   materializing per-row trees. *)
let join_cols ~keys ~(residual : Expr.pred) ~kind ~lnull ~rnull
    (lb : Columnar.t) (rb : Columnar.t) : Columnar.t =
  let module C = Columnar in
  let ln = C.length lb and rn = C.length rb in
  let cand_l, cand_r =
    match keys with
    | [] ->
      (* No equi key: every pair is a candidate (the nested loop). *)
      let li = Array.make (ln * rn) 0 and ri = Array.make (ln * rn) 0 in
      for i = 0 to ln - 1 do
        for j = 0 to rn - 1 do
          li.((i * rn) + j) <- i;
          ri.((i * rn) + j) <- j
        done
      done;
      (li, ri)
    | keys ->
      let coder = C.Coder.create () in
      (* Key codes per row; [-1] flags a key containing Null, which can
         never satisfy an equality conjunct (excluded from build and
         probe, surfacing only as outer pads). *)
      let side_codes (b : C.t) attrs : int array =
        let n = C.length b in
        if n = 0 then [||]
        else
          match C.cols b with
          | Some fields ->
            let comps =
              List.map
                (fun a ->
                  match List.assoc_opt a fields with
                  | Some c -> C.Coder.col_codes coder c
                  | None -> err "engine: unknown key attribute %s" a)
                attrs
            in
            let mixed = C.Coder.mix coder comps in
            Array.iteri
              (fun i _ ->
                if
                  List.exists (fun cs -> cs.(i) = C.Coder.null_code) comps
                then mixed.(i) <- -1)
              mixed;
            mixed
          | None ->
            (* Non-uniform rows: code key components row by row, mixing
               them exactly like the column path so both sides agree. *)
            let key = key_of attrs in
            let comps =
              Array.init n (fun i ->
                  match key (C.get_row b i) with
                  | Value.Tuple fields -> List.map snd fields
                  | v -> [ v ])
            in
            let k = List.length attrs in
            let code_arrays =
              List.init k (fun j ->
                  Array.map
                    (fun cs -> C.Coder.value_code coder (List.nth cs j))
                    comps)
            in
            let mixed = C.Coder.mix coder code_arrays in
            Array.iteri
              (fun i cs ->
                if List.exists (fun v -> v = Value.Null) cs then mixed.(i) <- -1)
              comps;
            mixed
      in
      let lcodes = side_codes lb (List.map fst keys) in
      let rcodes = side_codes rb (List.map snd keys) in
      let build_is_left = ln <= rn in
      let bcodes, pcodes = if build_is_left then (lcodes, rcodes) else (rcodes, lcodes) in
      let index = Hashtbl.create (2 * Array.length bcodes) in
      Array.iteri
        (fun bi c ->
          if c >= 0 then
            Hashtbl.replace index c
              (bi :: Option.value ~default:[] (Hashtbl.find_opt index c)))
        bcodes;
      let li = ref [] and ri = ref [] in
      Array.iteri
        (fun pi c ->
          if c >= 0 then
            match Hashtbl.find_opt index c with
            | None -> ()
            | Some bis ->
              List.iter
                (fun bi ->
                  if build_is_left then begin
                    li := bi :: !li;
                    ri := pi :: !ri
                  end
                  else begin
                    li := pi :: !li;
                    ri := bi :: !ri
                  end)
                bis)
        pcodes;
      (Array.of_list (List.rev !li), Array.of_list (List.rev !ri))
  in
  let joined = C.hstack (C.gather lb cand_l) (C.gather rb cand_r) in
  let mask =
    match residual with
    | Expr.True -> C.Bitv.create (C.length joined) true
    | residual -> C.eval_pred_mask joined residual
  in
  let matched_l = Bytes.make (max ln 1) '\000'
  and matched_r = Bytes.make (max rn 1) '\000' in
  for k = 0 to C.length joined - 1 do
    if C.Bitv.get mask k then begin
      Bytes.set matched_l cand_l.(k) '\001';
      Bytes.set matched_r cand_r.(k) '\001'
    end
  done;
  let inner =
    if C.Bitv.count mask = C.length joined then joined else C.filter joined mask
  in
  let unmatched m n =
    let idx = ref [] in
    for i = n - 1 downto 0 do
      if Bytes.get m i = '\000' then idx := i :: !idx
    done;
    Array.of_list !idx
  in
  let left_pad () =
    let ul = unmatched matched_l ln in
    C.hstack (C.gather lb ul) (C.broadcast (Array.length ul) rnull)
  in
  let right_pad () =
    let ur = unmatched matched_r rn in
    C.hstack (C.broadcast (Array.length ur) lnull) (C.gather rb ur)
  in
  match kind with
  | Query.Inner -> inner
  | Query.Left -> C.vstack [ inner; left_pad () ]
  | Query.Right -> C.vstack [ inner; right_pad () ]
  | Query.Full -> C.vstack [ inner; left_pad (); right_pad () ]

(* Rows per structural-equality class of [codes], first-seen order,
   members ascending — the grouping order of [group_rows]. *)
let group_indices (codes : int array) : int array array =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun i c ->
      match Hashtbl.find_opt tbl c with
      | Some cell -> cell := i :: !cell
      | None ->
        let cell = ref [ i ] in
        Hashtbl.add tbl c cell;
        order := cell :: !order)
    codes;
  Array.of_list
    (List.rev_map (fun cell -> Array.of_list (List.rev !cell)) !order)

(* Tuple flatten: splice the nested tuple column's fields next to the
   outer columns.  When the nested column is already a clean [CTuple]
   this is pointer reuse; otherwise the inner tuples are rebuilt per
   row (with [flatten_tuple_row]'s error behavior). *)
let flatten_tuple_cols inner_ty a (b : Columnar.t) : Columnar.t =
  let n = Columnar.length b in
  let null_inner = Vtype.null_tuple inner_ty in
  match Columnar.cols b with
  | None ->
    Columnar.of_rows (List.map (flatten_tuple_row inner_ty a) (Columnar.to_rows b))
  | Some fs ->
    let right =
      match List.assoc_opt a fs with
      | Some (Columnar.CTuple (_, _, None) as ic) -> { Columnar.n; row = ic }
      | Some col ->
        Columnar.of_values
          (Array.init n (fun i ->
               match Columnar.col_get col i with
               | Value.Tuple _ as inner -> inner
               | Value.Null -> null_inner
               | _ -> err "engine: tuple flatten of non-tuple attribute %s" a))
      | None -> err "engine: unknown attribute %s" a
    in
    Columnar.hstack b right

(* Relation flatten: expand the bag column by building a parent-index
   and element-selection vector, then one gather per side.  Inner
   flatten drops empty/Null bags; outer flatten emits one Null-padded
   row (the selection vector points past the element column at a
   single appended Null tuple). *)
let flatten_cols kind inner_ty a (b : Columnar.t) : Columnar.t =
  let n = Columnar.length b in
  let null_inner = Vtype.null_tuple inner_ty in
  let keep_empty = kind = Query.Flat_outer in
  match Columnar.find_col b a with
  | Some (Columnar.CBag bg) ->
    let present i =
      match bg.Columnar.bpresent with
      | None -> true
      | Some p -> Columnar.Bitv.get p i
    in
    let total = ref 0 in
    for i = 0 to n - 1 do
      let cnt =
        if not (present i) then 0
        else begin
          let s = ref 0 in
          for j = bg.Columnar.boff.(i) to bg.Columnar.boff.(i + 1) - 1 do
            s := !s + bg.Columnar.bmult.(j)
          done;
          !s
        end
      in
      total := !total + (if cnt = 0 then if keep_empty then 1 else 0 else cnt)
    done;
    let m = !total in
    let parent_idx = Array.make m 0 and sel = Array.make m 0 in
    let ne = Columnar.col_length bg.Columnar.belems in
    let k = ref 0 in
    for i = 0 to n - 1 do
      let start = !k in
      if present i then
        for j = bg.Columnar.boff.(i) to bg.Columnar.boff.(i + 1) - 1 do
          for _ = 1 to bg.Columnar.bmult.(j) do
            parent_idx.(!k) <- i;
            sel.(!k) <- j;
            incr k
          done
        done;
      if !k = start && keep_empty then begin
        parent_idx.(!k) <- i;
        sel.(!k) <- ne;
        incr k
      end
    done;
    let elem_batch = { Columnar.n = ne; row = bg.Columnar.belems } in
    let right =
      if keep_empty then
        Columnar.gather
          (Columnar.vstack [ elem_batch; Columnar.broadcast 1 null_inner ])
          sel
      else Columnar.gather elem_batch sel
    in
    Columnar.hstack (Columnar.gather b parent_idx) right
  | _ ->
    Columnar.of_rows
      (List.concat_map (flatten_rel_rows kind inner_ty a) (Columnar.to_rows b))

let nest_tuple_cols pairs c_name (b : Columnar.t) : Columnar.t =
  let n = Columnar.length b in
  let attrs = List.map snd pairs in
  match Columnar.cols b with
  | Some fs ->
    let rest = List.filter (fun (l, _) -> not (List.mem l attrs)) fs in
    let nested =
      List.map
        (fun (label, a) ->
          match List.assoc_opt a fs with
          | Some col -> (label, col)
          | None -> err "engine: unknown attribute %s" a)
        pairs
    in
    Columnar.of_cols n (rest @ [ (c_name, Columnar.CTuple (n, nested, None)) ])
  | None ->
    Columnar.of_rows (List.map (nest_tuple_row pairs c_name) (Columnar.to_rows b))

(* Per-tuple aggregation over the bag column: member values come straight
   from the flattened element column (offset-sliced per row), never from
   reconstructed rows. *)
let agg_tuple_cols fn a out (b : Columnar.t) : Columnar.t =
  let n = Columnar.length b in
  let unwrap v =
    match v with Value.Tuple [ (_, inner) ] -> inner | other -> other
  in
  let member_vals : Value.t list array =
    match Columnar.find_col b a with
    | Some (Columnar.CBag bg) ->
      let evs =
        match bg.Columnar.belems with
        | Columnar.CTuple (_, [ (_, inner) ], None) -> Columnar.col_values inner
        | ec -> Array.map unwrap (Columnar.col_values ec)
      in
      let present i =
        match bg.Columnar.bpresent with
        | None -> true
        | Some p -> Columnar.Bitv.get p i
      in
      Array.init n (fun i ->
          if not (present i) then []
          else begin
            let acc = ref [] in
            for j = bg.Columnar.boff.(i + 1) - 1 downto bg.Columnar.boff.(i) do
              for _ = 1 to bg.Columnar.bmult.(j) do
                acc := evs.(j) :: !acc
              done
            done;
            !acc
          end)
    | col_opt ->
      let get_field =
        match col_opt, Columnar.cols b with
        | Some col, _ -> fun i -> Some (Columnar.col_get col i)
        | None, Some _ -> fun _ -> None
        | None, None -> fun i -> Value.field a (Columnar.get_row b i)
      in
      Array.init n (fun i ->
          match get_field i with
          | Some (Value.Bag _ as bag) -> List.map unwrap (Value.expand bag)
          | Some Value.Null | None -> []
          | Some _ -> err "engine: per-tuple aggregation of non-bag attribute %s" a)
  in
  let agg_vals = Array.map (Agg.apply fn) member_vals in
  Columnar.hstack b
    (Columnar.of_cols n [ (out, (Columnar.of_values agg_vals).Columnar.row) ])

(* Group-and-nest on one (already shuffled) partition: group rows by the
   key columns' structural codes, gather the key columns once per group,
   and build each group's bag from the projected member columns. *)
let nest_rel_cols ~group_attrs pairs c_name (b : Columnar.t) : Columnar.t =
  let n = Columnar.length b in
  match Columnar.cols b with
  | Some fs ->
    let strict_col a =
      match List.assoc_opt a fs with
      | Some col -> col
      | None -> err "engine: unknown key attribute %s" a
    in
    let lax_col a =
      match List.assoc_opt a fs with
      | Some col -> col
      | None -> Columnar.CNull n
    in
    let coder = Columnar.Coder.create () in
    let key_codes =
      match group_attrs with
      | [] -> Array.make n 0
      | gs ->
        Columnar.Coder.mix coder
          (List.map (fun a -> Columnar.Coder.col_codes coder (strict_col a)) gs)
    in
    let groups = group_indices key_codes in
    let reps = Array.map (fun m -> m.(0)) groups in
    let proj_vals =
      Columnar.to_values
        (Columnar.of_cols n
           (List.map (fun (label, a) -> (label, lax_col a)) pairs))
    in
    let keys =
      Columnar.gather
        (Columnar.of_cols n (List.map (fun a -> (a, strict_col a)) group_attrs))
        reps
    in
    let bags =
      Array.map
        (fun members ->
          Value.Tuple
            [
              ( c_name,
                Value.bag_of_list
                  (List.map (fun i -> proj_vals.(i)) (Array.to_list members)) );
            ])
        groups
    in
    Columnar.hstack keys (Columnar.of_values bags)
  | None ->
    let proj t =
      Value.Tuple
        (List.map
           (fun (label, a) ->
             (label, Option.value ~default:Value.Null (Value.field a t)))
           pairs)
    in
    Columnar.of_rows
      (List.map
         (fun (k, members) ->
           Value.concat_tuples k
             (Value.Tuple [ (c_name, Value.bag_of_list (List.map proj members)) ]))
         (group_by_attrs group_attrs (Columnar.to_rows b)))

(* Grouped aggregation on one (already shuffled) partition: key columns
   are lax like [group_key]; aggregate inputs are strict like
   [aggregate]'s member lookups. *)
let group_agg_cols group aggs (b : Columnar.t) : Columnar.t =
  let n = Columnar.length b in
  match Columnar.cols b with
  | Some fs ->
    let lax_col a =
      match List.assoc_opt a fs with
      | Some col -> col
      | None -> Columnar.CNull n
    in
    let coder = Columnar.Coder.create () in
    let key_codes =
      match group with
      | [] -> Array.make n 0
      | g ->
        Columnar.Coder.mix coder
          (List.map
             (fun (_, a) -> Columnar.Coder.col_codes coder (lax_col a))
             g)
    in
    let groups = group_indices key_codes in
    let reps = Array.map (fun m -> m.(0)) groups in
    let keys =
      Columnar.gather
        (Columnar.of_cols n (List.map (fun (label, a) -> (label, lax_col a)) group))
        reps
    in
    let agg_cols =
      List.map
        (fun (fn, a, out_name) ->
          let member_val : int -> Value.t =
            match a with
            | None -> fun _ -> Value.Int 1
            | Some a -> (
              match List.assoc_opt a fs with
              | Some col -> fun i -> Columnar.col_get col i
              | None -> err "engine: unknown attribute %s" a)
          in
          let vals =
            Array.map
              (fun members ->
                Agg.apply fn (List.map member_val (Array.to_list members)))
              groups
          in
          (out_name, (Columnar.of_values vals).Columnar.row))
        aggs
    in
    Columnar.hstack keys (Columnar.of_cols (Array.length groups) agg_cols)
  | None ->
    let group_key t =
      Value.Tuple
        (List.map
           (fun (label, a) ->
             (label, Option.value ~default:Value.Null (Value.field a t)))
           group)
    in
    Columnar.of_rows
      (List.map
         (fun (k, members) ->
           let agg_fields =
             List.map
               (fun (fn, a, out_name) ->
                 let values =
                   match a with
                   | Some a ->
                     List.map
                       (fun t ->
                         match Value.field a t with
                         | Some v -> v
                         | None -> err "engine: unknown attribute %s" a)
                       members
                   | None -> List.map (fun _ -> Value.Int 1) members
                 in
                 (out_name, Agg.apply fn values))
               aggs
           in
           Value.concat_tuples k (Value.Tuple agg_fields))
         (group_rows group_key (Columnar.to_rows b)))

let run ?(config = default_config) ?parent ?registry (db : Relation.Db.t)
    (q : Query.t) : Relation.t * Stats.t =
  (* Pin the checkpoint run directory for the whole execution: a
     concurrent sweep (catalog eviction) is deferred until the last
     in-flight run releases, so a spilled partition whose only copy is
     on disk cannot be deleted from under us. *)
  Checkpoint.with_retained @@ fun () ->
  let env = schema_env db in
  let stats = Stats.create () in
  let n = config.partitions in
  let parallel = config.parallel in
  let retry = config.retry in
  (* Stage-level recovery is ambient (off by default): when the active
     Checkpoint config asks for it, every hash shuffle below gets a
     checkpoint barrier, and operator outputs are spilled under the
     memory watermark.  Read once per run so a concurrent
     [set_active] cannot tear one execution. *)
  let ckpt = Checkpoint.active () in
  let barrier label =
    match ckpt with
    | Some { Checkpoint.checkpoint_shuffles = true; _ } -> Some label
    | _ -> None
  in
  let maybe_spill d =
    (match ckpt with
    | Some { Checkpoint.max_memory_bytes = Some w; _ } ->
      ignore (Dataset.spill_over ~watermark:w d)
    | _ -> ());
    d
  in
  (* Retries are attributed on the operator span: a task that needed a
     second attempt leaves [attempt=2] on its operator. *)
  let retry_attr sp ~partition:_ ~attempt _e =
    Option.iter (fun s -> Obs.Span.set_int s "attempt" attempt) sp
  in
  (* Spans are only materialized when a parent is given: untraced runs
     pay nothing beyond the [Stats] counters they always paid. *)
  let sub sp name = Option.map (fun p -> Obs.Span.start ~parent:p name) sp in
  let finish_shuffle ssp moved =
    Option.iter
      (fun s ->
        Obs.Span.set_int s "rows_moved" moved;
        Obs.Span.finish s)
      ssp
  in
  let rec go osp (q : Query.t) : Dataset.t =
    let ostat =
      Stats.op stats ~op_id:q.id ~op_label:(Query.op_symbol q.node)
    in
    let op_name = Fmt.str "op:%s#%d" (Query.op_symbol q.node) q.id in
    let sp = sub osp op_name in
    let record_io input output =
      ostat.Stats.input_rows <- ostat.Stats.input_rows + input;
      ostat.Stats.output_rows <- ostat.Stats.output_rows + output
    in
    (* Every partition-transform of this operator is a retryable task
       attributed to the operator's span name. *)
    let mapp f d =
      Dataset.map_partitions ~parallel ~retry ~label:op_name
        ~on_retry:(retry_attr sp) f d
    in
    let mappc f d =
      Dataset.map_cpartitions ~parallel ~retry ~label:op_name
        ~on_retry:(retry_attr sp) f d
    in
    let narrow child kernel =
      let d = go sp child in
      let input = Dataset.cardinal d in
      let out = mapp (List.concat_map kernel) d in
      record_io input (Dataset.cardinal out);
      out
    in
    (* Columnar sibling of [narrow]: batch-in/batch-out per partition.
       Kernels skip empty batches so vectorized attribute lookups never
       raise where the (row-less) row path would not. *)
    let narrowc child kernel =
      let d = go sp child in
      let input = Dataset.cardinal d in
      let out =
        mappc (fun b -> if Columnar.length b = 0 then b else kernel b) d
      in
      record_io input (Dataset.cardinal out);
      out
    in
    let out = maybe_spill (eval_node sp ostat record_io narrow narrowc mapp mappc q) in
    Option.iter
      (fun s ->
        Obs.Span.set_int s "op_id" q.id;
        Obs.Span.set_int s "input_rows" ostat.Stats.input_rows;
        Obs.Span.set_int s "output_rows" ostat.Stats.output_rows;
        Obs.Span.set_int s "shuffled_rows" ostat.Stats.shuffled_rows;
        Obs.Span.finish s)
      sp;
    out
  and eval_node sp ostat record_io narrow narrowc mapp mappc (q : Query.t) :
      Dataset.t =
    match q.node, q.children with
    | Query.Table name, [] ->
      let rel = Relation.Db.find_exn name db in
      let d = Dataset.of_relation ~partitions:n rel in
      record_io (Relation.cardinal rel) (Dataset.cardinal d);
      d
    | Query.Select pred, [ c ] when vectorized () ->
      narrowc c (fun b -> Columnar.filter b (Columnar.eval_pred_mask b pred))
    | Query.Select pred, [ c ] ->
      narrow c (fun t -> if Expr.eval_pred t pred then [ t ] else [])
    | Query.Project cols, [ c ] when vectorized () ->
      narrowc c (fun b ->
          Columnar.of_cols (Columnar.length b)
            (List.map (fun (name, e) -> (name, Columnar.eval_expr b e)) cols))
    | Query.Project cols, [ c ] -> narrow c (fun t -> [ project_row cols t ])
    | Query.Rename pairs, [ c ] when vectorized () ->
      let rename_label = rename_label_fn pairs in
      let rename = rename_row pairs in
      narrowc c (fun b ->
          match Columnar.cols b with
          | Some fields ->
            Columnar.of_cols (Columnar.length b)
              (List.map (fun (l, c) -> (rename_label l, c)) fields)
          | None -> Columnar.of_rows (List.map rename (Columnar.to_rows b)))
    | Query.Rename pairs, [ c ] ->
      let rename = rename_row pairs in
      narrow c (fun t -> [ rename t ])
    | Query.Flatten_tuple a, [ c ] ->
      let cty = Typecheck.infer env c in
      let inner_ty =
        match List.assoc_opt a (Vtype.relation_fields cty) with
        | Some ty -> ty
        | None -> err "engine: unknown attribute %s" a
      in
      if vectorized () then narrowc c (flatten_tuple_cols inner_ty a)
      else narrow c (fun t -> [ flatten_tuple_row inner_ty a t ])
    | Query.Flatten (kind, a), [ c ] ->
      let cty = Typecheck.infer env c in
      let inner_ty =
        match List.assoc_opt a (Vtype.relation_fields cty) with
        | Some (Vtype.TBag ety) -> ety
        | Some _ | None -> err "engine: attribute %s is not a relation" a
      in
      if vectorized () then narrowc c (flatten_cols kind inner_ty a)
      else narrow c (flatten_rel_rows kind inner_ty a)
    | Query.Nest_tuple (pairs, c_name), [ c ] ->
      if vectorized () then narrowc c (nest_tuple_cols pairs c_name)
      else
        let nest = nest_tuple_row pairs c_name in
        narrow c (fun t -> [ nest t ])
    | Query.Agg_tuple (fn, a, b), [ c ] ->
      if vectorized () then narrowc c (agg_tuple_cols fn a b)
      else narrow c (fun t -> [ agg_tuple_row fn a b t ])
    | Query.Union, [ l; r ] ->
      let dl = go sp l and dr = go sp r in
      let input = Dataset.cardinal dl + Dataset.cardinal dr in
      let out =
        if vectorized () then begin
          let cl = Dataset.cpartitions dl and cr = Dataset.cpartitions dr in
          Dataset.of_cpartitions
            (Array.init n (fun i ->
                 let pl = if i < Array.length cl then cl.(i) else Columnar.empty
                 and pr = if i < Array.length cr then cr.(i) else Columnar.empty in
                 Columnar.vstack [ pl; pr ]))
        end
        else
          Dataset.of_partitions
            (Array.init n (fun i ->
                 let pl =
                   if i < Dataset.partition_count dl then
                     (Dataset.partitions dl).(i)
                   else []
                 and pr =
                   if i < Dataset.partition_count dr then
                     (Dataset.partitions dr).(i)
                   else []
                 in
                 pl @ pr))
      in
      record_io input (Dataset.cardinal out);
      out
    | Query.Diff, [ l; r ] ->
      let dl = go sp l and dr = go sp r in
      let input = Dataset.cardinal dl + Dataset.cardinal dr in
      let ssp = sub sp "shuffle" in
      (* Combine per aligned partition pair inside a retry scope: the
         (possibly checkpointed) partition fetches happen in the task,
         so a lost partition replays from its recovery root. *)
      let diff_task dl dr part_op i =
        Fault.protect ~policy:retry
          ~task:(Fmt.str "op:%s#%d/p%d" (Query.op_symbol q.node) q.id i)
          ~task_id:i
          ~on_retry:(fun ~attempt e ->
            Dataset.recover_partition dl i;
            Dataset.recover_partition dr i;
            retry_attr sp ~partition:i ~attempt e)
          (fun () ->
            Obs.Faultinject.fire "engine.partition";
            part_op i)
      in
      let out, moved =
        if vectorized () then begin
          let dl, m1 =
            Dataset.shuffle_hashed ?barrier:(barrier "diff-l") ~partitions:n
              whole_row_hash dl
          in
          let dr, m2 =
            Dataset.shuffle_hashed ?barrier:(barrier "diff-r") ~partitions:n
              whole_row_hash dr
          in
          ( Dataset.of_cpartitions
              (Array.init n
                 (diff_task dl dr (fun i ->
                      diff_cols
                        (Dataset.cpartition dl i)
                        (Dataset.cpartition dr i)))),
            m1 + m2 )
        end
        else begin
          let dl, m1 =
            Dataset.shuffle_by ?barrier:(barrier "diff-l") ~partitions:n
              Fun.id dl
          in
          let dr, m2 =
            Dataset.shuffle_by ?barrier:(barrier "diff-r") ~partitions:n
              Fun.id dr
          in
          ( Dataset.of_partitions
              (Array.init n
                 (diff_task dl dr (fun i ->
                      diff_rows
                        (Dataset.partition dl i)
                        (Dataset.partition dr i)))),
            m1 + m2 )
        end
      in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      record_io input (Dataset.cardinal out);
      out
    | Query.Dedup, [ c ] ->
      let d = go sp c in
      let input = Dataset.cardinal d in
      let ssp = sub sp "shuffle" in
      let d, moved =
        if vectorized () then
          Dataset.shuffle_hashed ?barrier:(barrier "dedup") ~partitions:n
            whole_row_hash d
        else Dataset.shuffle_by ?barrier:(barrier "dedup") ~partitions:n Fun.id d
      in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      let out =
        if vectorized () then mappc dedup_cols d
        else mapp (fun rows -> List.map fst (group_rows Fun.id rows)) d
      in
      record_io input (Dataset.cardinal out);
      out
    | Query.Nest_rel (pairs, c_name), [ c ] ->
      let d = go sp c in
      let input = Dataset.cardinal d in
      let cty = Typecheck.infer env c in
      let attrs = List.map snd pairs in
      let all = List.map fst (Vtype.relation_fields cty) in
      let group_attrs = List.filter (fun a -> not (List.mem a attrs)) all in
      let ssp = sub sp "shuffle" in
      let d, moved =
        if vectorized () then
          Dataset.shuffle_hashed ?barrier:(barrier "nest") ~partitions:n
            (key_hash_of_pairs
               (List.map (fun a -> (a, a)) group_attrs)
               ~strict:true (key_of group_attrs))
            d
        else
          Dataset.shuffle_by ?barrier:(barrier "nest") ~partitions:n
            (key_of group_attrs) d
      in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      let proj t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               ( label,
                 Option.value ~default:Value.Null (Value.field a t) ))
             pairs)
      in
      let nest rows =
        List.map
          (fun (k, members) ->
            let nested = List.map proj members in
            Value.concat_tuples k
              (Value.Tuple [ (c_name, Value.bag_of_list nested) ]))
          (group_by_attrs group_attrs rows)
      in
      let out =
        if vectorized () then
          mappc
            (fun b ->
              if Columnar.length b = 0 then b
              else nest_rel_cols ~group_attrs pairs c_name b)
            d
        else mapp nest d
      in
      record_io input (Dataset.cardinal out);
      out
    | Query.Group_agg (group, aggs), [ c ] ->
      let d = go sp c in
      let input = Dataset.cardinal d in
      let group_key t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               (label, Option.value ~default:Value.Null (Value.field a t)))
             group)
      in
      let ssp = sub sp "shuffle" in
      let d, moved =
        if vectorized () then
          Dataset.shuffle_hashed ?barrier:(barrier "groupagg") ~partitions:n
            (key_hash_of_pairs group ~strict:false group_key)
            d
        else
          Dataset.shuffle_by ?barrier:(barrier "groupagg") ~partitions:n
            group_key d
      in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      let aggregate rows =
        List.map
          (fun (k, members) ->
            let agg_fields =
              List.map
                (fun (fn, a, out_name) ->
                  let values =
                    match a with
                    | Some a ->
                      List.map
                        (fun t ->
                          match Value.field a t with
                          | Some v -> v
                          | None -> err "engine: unknown attribute %s" a)
                        members
                    | None -> List.map (fun _ -> Value.Int 1) members
                  in
                  (out_name, Agg.apply fn values))
                aggs
            in
            Value.concat_tuples k (Value.Tuple agg_fields))
          (group_rows group_key rows)
      in
      let out =
        if vectorized () then
          mappc
            (fun b ->
              if Columnar.length b = 0 then b else group_agg_cols group aggs b)
            d
        else mapp aggregate d
      in
      record_io input (Dataset.cardinal out);
      out
    | Query.Join (kind, pred), [ l; r ] ->
      run_join ~task:(Fmt.str "op:⋈#%d" q.id) sp ostat kind pred l r
    | Query.Product, [ l; r ] ->
      run_join ~task:(Fmt.str "op:×#%d" q.id) sp ostat Query.Inner Expr.True l r
    | _ -> err "engine: malformed query node (operator %d)" q.id
  and run_join ~task sp ostat kind pred l r =
    let lty = Typecheck.infer env l and rty = Typecheck.infer env r in
    let lfields = List.map fst (Vtype.relation_fields lty) in
    let rfields = List.map fst (Vtype.relation_fields rty) in
    let lnull = Vtype.null_tuple (Vtype.element lty) in
    let rnull = Vtype.null_tuple (Vtype.element rty) in
    let dl = go sp l and dr = go sp r in
    let input = Dataset.cardinal dl + Dataset.cardinal dr in
    let keys, residual = equi_split lfields rfields pred in
    let ssp = sub sp "shuffle" in
    let dl, dr, moved =
      match keys with
      | [] ->
        (* No equi key: gather both sides (the engine's "broadcast"). *)
        let dl, m1 = Dataset.gather dl and dr, m2 = Dataset.gather dr in
        (dl, dr, m1 + m2)
      | keys ->
        let lkey = key_of (List.map fst keys) in
        let rkey t =
          (* Hash right rows by the same tuple shape as the left key so that
             equal key values land in the same partition. *)
          match key_of (List.map snd keys) t with
          | Value.Tuple fields ->
            Value.Tuple
              (List.map2 (fun (a, _) (_, v) -> (a, v)) keys fields)
          | v -> v
        in
        if vectorized () then begin
          let dl, m1 =
            Dataset.shuffle_hashed ?barrier:(barrier "join-l") ~partitions:n
              (key_hash_of_pairs
                 (List.map (fun (a, _) -> (a, a)) keys)
                 ~strict:true lkey)
              dl
          in
          let dr, m2 =
            Dataset.shuffle_hashed ?barrier:(barrier "join-r") ~partitions:n
              (key_hash_of_pairs keys ~strict:true rkey)
              dr
          in
          (dl, dr, m1 + m2)
        end
        else begin
          let dl, m1 =
            Dataset.shuffle_by ?barrier:(barrier "join-l") ~partitions:n lkey
              dl
          in
          let dr, m2 =
            Dataset.shuffle_by ?barrier:(barrier "join-r") ~partitions:n rkey
              dr
          in
          (dl, dr, m1 + m2)
        end
    in
    Stats.record_shuffle stats ostat moved;
    finish_shuffle ssp moved;
    let np = max (Dataset.partition_count dl) (Dataset.partition_count dr) in
    let vect = vectorized () in
    (* Partition fetches live inside the task (not hoisted before it):
       a checkpointed or spilled partition does its disk read in the
       retry scope, so a torn read is recovered like any other task
       fault. *)
    let join_part =
      if vect then begin
        let cpart d i =
          if i < Dataset.partition_count d then Dataset.cpartition d i
          else Columnar.empty
        in
        fun i ->
          `Cols
            (join_cols ~keys ~residual ~kind ~lnull ~rnull (cpart dl i)
               (cpart dr i))
      end
      else begin
        let part d i =
          if i < Dataset.partition_count d then Dataset.partition d i else []
        in
        fun i ->
          `Rows
            (join_partition ~keys ~residual ~kind ~lnull ~rnull (part dl i)
               (part dr i))
      end
    in
    (* Join tasks retry like narrow partition tasks: the shuffled input
       partitions are immutable (or durable, after a barrier), so
       recomputation is exact. *)
    let join_task i =
      Fault.protect ~policy:retry ~task:(Fmt.str "%s/p%d" task i) ~task_id:i
        ~on_retry:(fun ~attempt e ->
          if i < Dataset.partition_count dl then Dataset.recover_partition dl i;
          if i < Dataset.partition_count dr then Dataset.recover_partition dr i;
          retry_attr sp ~partition:i ~attempt e)
        (fun () ->
          Obs.Faultinject.fire "engine.partition";
          join_part i)
    in
    let parts =
      if parallel && np > 1 then
        Pool.map_array (Pool.default ()) join_task (Array.init np Fun.id)
      else Array.init np join_task
    in
    let out =
      if vect then
        Dataset.of_cpartitions
          (Array.map
             (function `Cols b -> b | `Rows r -> Columnar.of_rows r)
             parts)
      else
        Dataset.of_partitions
          (Array.map
             (function `Rows r -> r | `Cols b -> Columnar.to_rows b)
             parts)
    in
    ostat.Stats.input_rows <- ostat.Stats.input_rows + input;
    ostat.Stats.output_rows <- ostat.Stats.output_rows + Dataset.cardinal out;
    out
  in
  let out_ty = Typecheck.infer env q in
  let root_sp = sub parent "engine.run" in
  let d = go root_sp q in
  let rel = Dataset.to_relation ~schema:out_ty d in
  Option.iter
    (fun s ->
      Obs.Span.set_int s "output_rows" (Relation.cardinal rel);
      Obs.Span.set_int s "shuffled_rows" (Stats.total_shuffled stats);
      Obs.Span.set_int s "stages" (Stats.stages stats);
      Obs.Span.finish s)
    root_sp;
  Stats.fold_into ?registry stats;
  (rel, stats)
