lib/engine/plan.mli: Format Nrab Query Typecheck
