examples/dblp_debugging.ml: Baselines Fmt List Nrab Option Scenarios String Whynot
