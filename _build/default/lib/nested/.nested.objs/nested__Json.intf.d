lib/nested/json.mli: Format Relation Value Vtype
