(* Unit tests for the shared domain pool: result ordering, exception
   propagation, reuse across submissions, nested submission (helping),
   and teardown. *)

let test_map_array_ordering () =
  let pool = Engine.Pool.create ~size:2 () in
  let results =
    Engine.Pool.map_array pool (fun i -> i * i) (Array.init 100 Fun.id)
  in
  Alcotest.(check (array int))
    "results in input order"
    (Array.init 100 (fun i -> i * i))
    results;
  Engine.Pool.shutdown pool

let test_map_list_ordering () =
  let pool = Engine.Pool.create ~size:2 () in
  let results =
    Engine.Pool.map_list pool String.uppercase_ascii [ "a"; "b"; "c" ]
  in
  Alcotest.(check (list string)) "list order" [ "A"; "B"; "C" ] results;
  Engine.Pool.shutdown pool

exception Boom of int

let test_exception_propagates () =
  let pool = Engine.Pool.create ~size:2 () in
  let fut = Engine.Pool.submit pool (fun () -> raise (Boom 7)) in
  Alcotest.check_raises "await re-raises" (Boom 7) (fun () ->
      ignore (Engine.Pool.await fut));
  (* the pool must survive a failed job *)
  let fut2 = Engine.Pool.submit pool (fun () -> 42) in
  Alcotest.(check int) "pool alive after failure" 42 (Engine.Pool.await fut2);
  Engine.Pool.shutdown pool

let test_map_array_leftmost_exception () =
  let pool = Engine.Pool.create ~size:2 () in
  (try
     ignore
       (Engine.Pool.map_array pool
          (fun i -> if i mod 3 = 0 then raise (Boom i) else i)
          (Array.init 10 (fun i -> i + 3)));
     Alcotest.fail "expected Boom"
   with Boom i ->
     (* inputs 3..12; 3 is the leftmost failing element *)
     Alcotest.(check int) "leftmost failure wins" 3 i);
  Engine.Pool.shutdown pool

let test_reuse_across_submissions () =
  let pool = Engine.Pool.create ~size:1 () in
  let total = ref 0 in
  for round = 1 to 5 do
    let results =
      Engine.Pool.map_array pool (fun i -> i + round) (Array.init 8 Fun.id)
    in
    total := !total + Array.fold_left ( + ) 0 results
  done;
  (* sum over rounds of (0+..+7) + 8*round = 28*5 + 8*15 *)
  Alcotest.(check int) "five rounds on one pool" 260 !total;
  Engine.Pool.shutdown pool

let test_nested_submission () =
  (* a pooled job fanning out on its own pool: await must help with
     queued work, or a size-1 pool would deadlock here *)
  let pool = Engine.Pool.create ~size:1 () in
  let fut =
    Engine.Pool.submit pool (fun () ->
        let inner =
          Engine.Pool.map_array pool (fun i -> i * 2) (Array.init 5 Fun.id)
        in
        Array.fold_left ( + ) 0 inner)
  in
  Alcotest.(check int) "nested fan-out completes" 20 (Engine.Pool.await fut);
  Engine.Pool.shutdown pool

let test_shutdown_degrades_submit () =
  (* submit after shutdown never raises: the job runs inline on the
     calling domain and the future comes back already resolved *)
  let pool = Engine.Pool.create ~size:1 () in
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool (* idempotent *);
  let before =
    Obs.Metrics.Counter.value
      (Obs.Metrics.counter "engine.pool.inline_fallback")
  in
  let fut = Engine.Pool.submit pool (fun () -> 41 + 1) in
  Alcotest.(check int) "ran inline" 42 (Engine.Pool.await fut);
  let after =
    Obs.Metrics.Counter.value
      (Obs.Metrics.counter "engine.pool.inline_fallback")
  in
  Alcotest.(check bool) "fallback counted" true (after > before)

let test_await_after_shutdown_job_done () =
  let pool = Engine.Pool.create ~size:1 () in
  let fut = Engine.Pool.submit pool (fun () -> "done") in
  Alcotest.(check string) "resolves" "done" (Engine.Pool.await fut);
  Engine.Pool.shutdown pool;
  (* a resolved future stays readable after teardown *)
  Alcotest.(check string) "still resolved" "done" (Engine.Pool.await fut)

let test_create_shutdown_cycles () =
  (* the server creates and tears down pools across sessions; repeated
     cycles must neither leak domains nor wedge (each cycle joins its
     workers before the next spawns) *)
  for round = 1 to 10 do
    let pool = Engine.Pool.create ~size:2 () in
    let results =
      Engine.Pool.map_array pool (fun i -> i + round) (Array.init 4 Fun.id)
    in
    Alcotest.(check (array int))
      (Fmt.str "round %d" round)
      (Array.init 4 (fun i -> i + round))
      results;
    Engine.Pool.shutdown pool;
    Engine.Pool.shutdown pool
  done

let test_shutdown_default () =
  (* the at_exit hook of the binaries; idempotent.  Runs last in this
     suite — it kills the shared pool for the rest of the process. *)
  let p = Engine.Pool.default () in
  let fut = Engine.Pool.submit p (fun () -> 7) in
  Alcotest.(check int) "default pool works" 7 (Engine.Pool.await fut);
  Engine.Pool.shutdown_default ();
  Engine.Pool.shutdown_default ();
  (* late submissions degrade to inline execution instead of raising *)
  let late = Engine.Pool.submit p (fun () -> 8) in
  Alcotest.(check int) "late submit runs inline" 8 (Engine.Pool.await late)

let test_default_pool_is_shared () =
  let p1 = Engine.Pool.default () in
  let p2 = Engine.Pool.default () in
  Alcotest.(check bool) "same instance" true (p1 == p2);
  Alcotest.(check bool) "at least one worker" true (Engine.Pool.size p1 >= 1)

let () =
  Alcotest.run "pool"
    [
      ( "futures",
        [
          Alcotest.test_case "map_array ordering" `Quick test_map_array_ordering;
          Alcotest.test_case "map_list ordering" `Quick test_map_list_ordering;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "leftmost exception wins" `Quick
            test_map_array_leftmost_exception;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reuse across submissions" `Quick
            test_reuse_across_submissions;
          Alcotest.test_case "nested submission (helping)" `Quick
            test_nested_submission;
          Alcotest.test_case "submit after shutdown" `Quick
            test_shutdown_degrades_submit;
          Alcotest.test_case "future outlives pool" `Quick
            test_await_after_shutdown_job_done;
          Alcotest.test_case "create/shutdown cycles" `Quick
            test_create_shutdown_cycles;
          Alcotest.test_case "default pool shared" `Quick
            test_default_pool_is_shared;
          Alcotest.test_case "shutdown_default" `Quick test_shutdown_default;
        ] );
    ]
