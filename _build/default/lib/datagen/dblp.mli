(** Synthetic DBLP-like data for scenarios D1–D5.

    Reproduces the structural properties the paper's DBLP scenarios depend
    on: long vs short proceedings titles (D1), >99 %-null bibtex records
    (D2), editor-but-not-author entries (D3), "ACM" appearing in the
    series rather than the publisher (D4), and homepage URLs stored in
    the note attribute (D5).  Target entities are embedded
    deterministically; filler volume scales with [scale]. *)

open Nested

(** {1 Schemas} *)

val inproceedings_schema : Vtype.t
val proceedings_schema : Vtype.t
val articles_schema : Vtype.t
val entries_schema : Vtype.t
val ipubs_schema : Vtype.t
val pubinfo_schema : Vtype.t
val authors_schema : Vtype.t

(** {1 Target entities of the why-not questions} *)

val d1_missing_title : string
val d1_missing_author : string
val d2_target_author : string
val d2_target_article_count : int
val d3_target_person : string
val d3_target_booktitle : string
val d3_target_year : int
val d4_target_author : string
val d5_target_author : string
val d5_target_url : string

(** Tables: [inproceedings], [proceedings], [articles], [entries],
    [ipubs], [pubinfo], [authors]. *)
val db : ?seed:int -> scale:int -> unit -> Relation.Db.t
