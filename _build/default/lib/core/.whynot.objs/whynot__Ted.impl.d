lib/core/ted.ml: Array Hashtbl List Nested String Tree Value
