(** Recursive-descent parser from token stream to surface {!Ast}. *)

(** Parse a full statement ([WITH ...] query).  The diagnostic carries
    the span of the offending token. *)
val statement : string -> (Ast.statement, Diagnostic.t) result
