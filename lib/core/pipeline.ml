(* Algorithm 1: the four-step heuristic why-not pipeline.

     1. schema backtracing          (Backtrace)
     2. schema alternatives         (Alternatives)
     3. data tracing                (Tracing)
     4. approximate MSRs            (Msr)

   [explain ~use_sas:false] is the paper's RPnoSA configuration (only the
   original schema alternative); [explain] with alternatives is RP. *)

open Nested
open Nrab

type result = {
  question : Question.t;
  sas : Alternatives.sa list;
  explanations : Explanation.t list;
  approx : Approx.report option;
  span : Obs.Span.t;
}

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

let phases = [ "backtrace"; "alternatives"; "tracing"; "msr" ]

let phase_durations_ms_of_span span =
  List.map (fun p -> (p, Obs.Span.sum_duration_ms_named p span)) phases

(* A tiled phase runner over an explicit cursor: each phase span starts
   at the previous one's end, so span bookkeeping (and GC pauses hitting
   it) is charged to a phase rather than falling into gaps.  The
   sequential pipeline threads one cursor through everything; the
   parallel pipeline gives each schema alternative its own. *)
let phase_at cursor parent name f =
  let sp = Obs.Span.start ~parent ~at:!cursor name in
  let bytes0 = Gc.allocated_bytes () in
  let minors0 = (Gc.quick_stat ()).Gc.minor_collections in
  Fun.protect
    ~finally:(fun () ->
      (* allocation pressure per phase, for the bench's alloc columns;
         [allocated_bytes] is per-domain but phases run on the domain
         that started them, so the delta is the phase's own *)
      Obs.Span.set_float sp "alloc_bytes" (Gc.allocated_bytes () -. bytes0);
      Obs.Span.set_int sp "minor_collections"
        ((Gc.quick_stat ()).Gc.minor_collections - minors0);
      cursor := Obs.Clock.now_ns ();
      Obs.Span.finish ~at:!cursor sp;
      (* One Debug record per phase completion — with the ambient
         trace_id stamped on it, a grep over the log stream replays a
         request's per-phase path without walking the span tree. *)
      Obs.Log.debug "pipeline.phase" (fun () ->
          [
            Obs.Log.str "phase" name;
            Obs.Log.float "ms" (Obs.Span.duration_ms sp);
          ]))
    (fun () -> f sp)

(* Phase bodies are retryable tasks under [retry]: a body that raises
   {!Engine.Fault.Transient} is recomputed from its (immutable) inputs —
   the database, the query, the backtrace — so a re-attempt is exact.
   Cancellation composes: [Cancel.Cancelled] is a permanent fault (never
   retried), and the abort hook is polled before every re-attempt so a
   cancelled run stops instead of burning its retry budget.  Retried
   attempts mark the phase span with an [attempt] attribute. *)
let protect_phase ~retry ~cancel ~task ~task_id sp f =
  Engine.Fault.protect ~policy:retry ~task ~task_id
    ~abort:(fun () ->
      if Cancel.cancelled cancel then Some (Cancel.Cancelled task) else None)
    ~on_retry:(fun ~attempt _ -> Obs.Span.set_int sp "attempt" attempt)
    f

(* A prepared traced run: the pattern-independent artifacts of a why-not
   run over ⟨Q, D⟩.  Schema-alternative enumeration and the original
   result ⟦Q⟧_D (the anchor of the side-effect bounds) depend only on the
   query, the database, and the alternative groups — not on the missing-
   answer pattern — so a long-lived service can compute them once and
   re-answer every new pattern on the same ⟨Q, D⟩ from the handle. *)
type handle = {
  h_query : Query.t;
  h_db : Relation.Db.t;
  h_env : Typecheck.env;
  h_sas : Alternatives.sa list;
  h_bi : Msr.bounds_input;
}

let handle_query h = h.h_query
let handle_sas h = h.h_sas

(* Steps 2 (schema alternatives) and the ⟦Q⟧_D execution, charged to the
   alternatives and MSR phases under [root]; step 1 (backtracing) runs
   per SA since the NIPs depend on the substituted attributes. *)
let prepare_phases ~use_sas ~max_sas ~alternatives ~cancel ~retry root cursor
    ~db q : handle =
  let phase parent name f =
    Cancel.check cancel ~where:name;
    phase_at cursor parent name (fun sp ->
        protect_phase ~retry ~cancel ~task:("prepare/" ^ name) ~task_id:0 sp
          (fun () -> f sp))
  in
  let env, sas =
    phase root "alternatives" (fun sp ->
        let env = schema_env db in
        let sas =
          if use_sas then Alternatives.enumerate ~max_sas ~env q alternatives
          else
            [
              {
                Alternatives.index = 0;
                query = q;
                changed_ops = Msr.Int_set.empty;
                description = "original";
              };
            ]
        in
        Obs.Span.set_int sp "sas" (List.length sas);
        (env, sas))
  in
  (* ⟦Q⟧_D, the basis of the side-effect bounds, is charged to the MSR
     phase.  Evaluated on the engine rather than the reference
     interpreter: the results are identical and the engine is an order
     of magnitude faster on the bench scales. *)
  let bi =
    phase root "msr" (fun sp ->
        let original_result =
          Relation.tuples (fst (Engine.Exec.run ~parent:sp db q))
        in
        Obs.Span.set_int sp "original_result_rows"
          (List.length original_result);
        { Msr.original_result })
  in
  { h_query = q; h_db = db; h_env = env; h_sas = sas; h_bi = bi }

(* Steps 1, 3, and 4 — the pattern-dependent per-SA chains plus the final
   prune/rank — under [root], reading everything else from the handle. *)
let run_phases ?approx ~revalidate ~parallel ~cancel ~retry root cursor
    (h : handle) (missing : Nip.t) :
    Explanation.t list * Approx.report option =
  let phase parent name f = phase_at cursor parent name f in
  let { h_query = q; h_db = db; h_env = env; h_sas = sas; h_bi = bi } = h in
  (* One SA's backtrace→tracing→MSR chain; independent across SAs.  The
     cancellation token is polled before every phase — the pipeline's
     preemption points, so a lapsed deadline is observed within one
     phase of where the run currently is.  Returns the SA's candidate
     explanations plus the approximation decision it ran under (stride 1 /
     no top-k on the exact path). *)
  let process_sa cursor (sa : Alternatives.sa) sasp =
    let checked name f =
      Cancel.check cancel ~where:name;
      phase_at cursor sasp name (fun sp ->
          protect_phase ~retry ~cancel
            ~task:(Fmt.str "sa:S%d/%s" (sa.Alternatives.index + 1) name)
            ~task_id:sa.Alternatives.index sp
            (fun () -> f sp))
    in
    let bt =
      checked "backtrace" (fun _ ->
          Backtrace.run ~env sa.Alternatives.query missing)
    in
    (* The degradation decision is taken right before tracing, so each
       SA sees how much budget its predecessors left it. *)
    let decision =
      match approx with
      | None -> { Approx.stride = 1; top_k = None }
      | Some a -> Approx.decide a
    in
    (* steps 3 and 4 *)
    let trace =
      checked "tracing" (fun sp ->
          if decision.Approx.stride > 1 then
            Obs.Span.set_int sp "sample_stride" decision.Approx.stride;
          Tracing.run ~revalidate ~sample_stride:decision.Approx.stride ~env
            db sa bt)
    in
    checked "msr" (fun msp ->
        let sample_stride = decision.Approx.stride in
        let es, skipped =
          match decision.Approx.top_k with
          | Some k -> Msr.from_trace_topk ~sample_stride ~bi ~q ~k trace
          | None -> (Msr.from_trace ~sample_stride ~bi ~q trace, 0)
        in
        let es =
          if decision.Approx.stride > 1 then
            List.map
              (Explanation.with_confidence
                 (1.0 /. float_of_int decision.Approx.stride))
              es
          else es
        in
        Obs.Span.set_int msp "candidates" (List.length es);
        if skipped > 0 then Obs.Span.set_int msp "skipped_candidates" skipped;
        (es, decision, skipped))
  in
  let sa_name (sa : Alternatives.sa) =
    Fmt.str "sa:S%d" (sa.Alternatives.index + 1)
  in
  let per_sa =
    if parallel && List.length sas > 1 then begin
      (* Fan the SAs out over the shared domain pool.  The sa:S<i> spans
         are started here on the calling domain (so their order under the
         root is deterministic); each job tiles its three child phases
         with a cursor of its own.  Results are awaited in SA order, so
         the concatenated candidate list — and hence the final ranking —
         is identical to the sequential pipeline's. *)
      Obs.Span.set_bool root "parallel_sas" true;
      let pool = Engine.Pool.default () in
      let futures =
        List.map
          (fun (sa : Alternatives.sa) ->
            let sasp = Obs.Span.start ~parent:root (sa_name sa) in
            (* Dequeue-edge abort: an SA job queued behind slow work is
               reclaimed without running once the run is cancelled. *)
            let abort () =
              if Cancel.cancelled cancel then begin
                Obs.Span.set_bool sasp "aborted" true;
                Obs.Span.finish sasp;
                Some (Cancel.Cancelled "pool.dequeue")
              end
              else None
            in
            Engine.Pool.submit ~abort pool (fun () ->
                Fun.protect
                  ~finally:(fun () -> Obs.Span.finish sasp)
                  (fun () ->
                    Cancel.check cancel ~where:(sa_name sa);
                    let sa_cursor = ref (Obs.Clock.now_ns ()) in
                    process_sa sa_cursor sa sasp)))
          sas
      in
      List.map Engine.Pool.await futures
    end
    else
      List.map
        (fun (sa : Alternatives.sa) ->
          Cancel.check cancel ~where:(sa_name sa);
          phase root (sa_name sa) (fun sasp -> process_sa cursor sa sasp))
        sas
  in
  let explanations = List.concat_map (fun (es, _, _) -> es) per_sa in
  (* Fold the per-SA decisions into one honest report: the weakest
     confidence (largest stride) wins, skip counts add up, and the mode
     names the coarsest degradation any SA suffered. *)
  let report =
    match approx with
    | None -> None
    | Some a ->
      let max_stride =
        List.fold_left (fun m (_, d, _) -> max m d.Approx.stride) 1 per_sa
      in
      let top_k =
        List.fold_left
          (fun acc (_, (d : Approx.decision), _) ->
            match (d.Approx.top_k, acc) with
            | Some k, Some k' -> Some (min k k')
            | Some k, None -> Some k
            | None, acc -> acc)
          None per_sa
      in
      let skipped =
        List.fold_left (fun s (_, _, sk) -> s + sk) 0 per_sa
      in
      let mode =
        if top_k <> None then "top_k"
        else if max_stride > 1 then "sampled"
        else "exact"
      in
      Some
        {
          Approx.mode;
          confidence = 1.0 /. float_of_int max_stride;
          max_stride;
          top_k;
          skipped;
          budget_ms = (Approx.config a).Approx.budget_ms;
        }
  in
  let take k l =
    let rec go k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: tl -> x :: go (k - 1) tl
    in
    go k l
  in
  let ranked =
    phase root "msr" (fun _ ->
        Explanation.rank (Explanation.prune_dominated explanations))
  in
  let ranked =
    match report with
    | Some { Approx.top_k = Some k; _ } -> take k ranked
    | _ -> ranked
  in
  (ranked, report)

let record_approx_metrics (report : Approx.report option) =
  match report with
  | None -> ()
  | Some r ->
    Obs.Metrics.Counter.incr
      (Obs.Metrics.counter ("pipeline.approx." ^ r.Approx.mode));
    if r.Approx.skipped > 0 then
      Obs.Metrics.Counter.incr ~by:r.Approx.skipped
        (Obs.Metrics.counter "pipeline.approx.skipped_candidates");
    Obs.Log.debug "pipeline.approx" (fun () ->
        [
          Obs.Log.str "mode" r.Approx.mode;
          Obs.Log.float "confidence" r.Approx.confidence;
          Obs.Log.int "max_stride" r.Approx.max_stride;
          Obs.Log.int "skipped" r.Approx.skipped;
        ])

let record_run_metrics root ~sas ~explanations =
  List.iter
    (fun (p, ms) ->
      Obs.Metrics.Histogram.observe
        (Obs.Metrics.histogram ("pipeline.phase." ^ p ^ "_ms"))
        ms)
    (phase_durations_ms_of_span root);
  Obs.Metrics.Counter.incr (Obs.Metrics.counter "pipeline.explains");
  Obs.Metrics.Counter.incr ~by:sas (Obs.Metrics.counter "pipeline.sas");
  Obs.Metrics.Counter.incr ~by:explanations
    (Obs.Metrics.counter "pipeline.explanations");
  Obs.Log.debug "pipeline.done" (fun () ->
      [
        Obs.Log.float "ms" (Obs.Span.duration_ms root);
        Obs.Log.int "sas" sas;
        Obs.Log.int "explanations" explanations;
      ])

(* A cancelled run still leaves a well-formed (finished) span tree: the
   root is closed with a [cancelled_at] attribute naming the boundary
   that observed the cancellation — the partial-phase attribution the
   serve layer surfaces in Deadline_exceeded errors. *)
let finish_cancelled root f =
  try f ()
  with Cancel.Cancelled where as e ->
    Obs.Span.set_string root "cancelled_at" where;
    Obs.Span.finish root;
    raise e

(* [?checkpoint] swaps the ambient {!Engine.Checkpoint} config for the
   duration of the call only — callers that do not pass it inherit
   whatever the process (server flags, env) has configured. *)
let with_checkpoint checkpoint f =
  match checkpoint with
  | None -> f ()
  | Some c -> Engine.Checkpoint.with_config (Some c) f

let prepare ?(use_sas = true) ?(max_sas = 16)
    ?(alternatives : Alternatives.alternatives = []) ?(cancel = Cancel.none)
    ?(retry = Engine.Fault.no_retry) ?checkpoint ?parent ~db (q : Query.t) :
    handle =
  let root = Obs.Span.start ?parent "pipeline.prepare" in
  let cursor = ref (Obs.Span.start_ns root) in
  let h =
    finish_cancelled root (fun () ->
        with_checkpoint checkpoint (fun () ->
            prepare_phases ~use_sas ~max_sas ~alternatives ~cancel ~retry root
              cursor ~db q))
  in
  Obs.Span.set_int root "sas" (List.length h.h_sas);
  Obs.Span.finish root;
  Obs.Metrics.Counter.incr (Obs.Metrics.counter "pipeline.prepares");
  h

let explain_with ?approx ?(revalidate = true) ?(parallel = false)
    ?(cancel = Cancel.none) ?(retry = Engine.Fault.no_retry) ?checkpoint
    ?parent (h : handle) (missing : Nip.t) : result =
  let root = Obs.Span.start ?parent "pipeline.explain" in
  let cursor = ref (Obs.Span.start_ns root) in
  let explanations, report =
    finish_cancelled root (fun () ->
        with_checkpoint checkpoint (fun () ->
            run_phases ?approx ~revalidate ~parallel ~cancel ~retry root
              cursor h missing))
  in
  Obs.Span.set_int root "sas" (List.length h.h_sas);
  Obs.Span.set_int root "explanations" (List.length explanations);
  Option.iter
    (fun r -> Obs.Span.set_string root "approx_mode" r.Approx.mode)
    report;
  Obs.Span.finish root;
  record_run_metrics root ~sas:(List.length h.h_sas)
    ~explanations:(List.length explanations);
  record_approx_metrics report;
  let question = Question.make ~query:h.h_query ~db:h.h_db ~missing in
  { question; sas = h.h_sas; explanations; approx = report; span = root }

let explain ?approx ?(use_sas = true) ?(max_sas = 16) ?(revalidate = true)
    ?(alternatives : Alternatives.alternatives = []) ?(parallel = false)
    ?(cancel = Cancel.none) ?(retry = Engine.Fault.no_retry) ?checkpoint
    ?parent (phi : Question.t) : result =
  let root = Obs.Span.start ?parent "pipeline.explain" in
  (* Phase spans are tiled wall-to-wall — the four phase totals account
     for ≈ all of the root span (in the sequential pipeline; concurrent
     SA phases overlap, so there the sums can exceed the total). *)
  let cursor = ref (Obs.Span.start_ns root) in
  let h, (explanations, report) =
    finish_cancelled root (fun () ->
        with_checkpoint checkpoint (fun () ->
            let h =
              prepare_phases ~use_sas ~max_sas ~alternatives ~cancel ~retry
                root cursor ~db:phi.Question.db phi.Question.query
            in
            ( h,
              run_phases ?approx ~revalidate ~parallel ~cancel ~retry root
                cursor h phi.Question.missing )))
  in
  Obs.Span.set_int root "sas" (List.length h.h_sas);
  Obs.Span.set_int root "explanations" (List.length explanations);
  Option.iter
    (fun r -> Obs.Span.set_string root "approx_mode" r.Approx.mode)
    report;
  Obs.Span.finish root;
  record_run_metrics root ~sas:(List.length h.h_sas)
    ~explanations:(List.length explanations);
  record_approx_metrics report;
  { question = phi; sas = h.h_sas; explanations; approx = report; span = root }

(* Total time per algorithm phase (summed across schema alternatives). *)
let phase_durations_ms (r : result) = phase_durations_ms_of_span r.span

(* Allocation pressure per phase: (bytes allocated, minor collections),
   summed across schema alternatives from the span attributes that
   [phase_at] records. *)
let phase_gc (r : result) : (string * (float * int)) list =
  List.map
    (fun p ->
      let sps = Obs.Span.find_all (fun s -> Obs.Span.name s = p) r.span in
      let bytes =
        List.fold_left
          (fun acc s ->
            match Obs.Span.attr s "alloc_bytes" with
            | Some (Obs.Span.Float f) -> acc +. f
            | _ -> acc)
          0. sps
      in
      let minors =
        List.fold_left
          (fun acc s ->
            match Obs.Span.attr s "minor_collections" with
            | Some (Obs.Span.Int i) -> acc + i
            | _ -> acc)
          0 sps
      in
      (p, (bytes, minors)))
    phases

(* Convenience: explanation op-id sets in rank order. *)
let explanation_sets (r : result) : int list list =
  List.map Explanation.op_list r.explanations

let pp_result ppf (r : result) =
  let q = r.question.Question.query in
  Fmt.pf ppf "@[<v>%d schema alternative(s):@,%a@,explanations:@,%a@]"
    (List.length r.sas)
    (Fmt.list ~sep:Fmt.cut (fun ppf (sa : Alternatives.sa) ->
         Fmt.pf ppf "  S%d: %s" (sa.Alternatives.index + 1)
           sa.Alternatives.description))
    r.sas
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %a" (Explanation.pp_with_query q) e))
    r.explanations
