lib/baselines/explanation_set.ml: Fmt Int List Nrab Query Set String
