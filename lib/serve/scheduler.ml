(* Bounded admission + deadlines in front of the shared domain pool.

   The pool's own queue is unbounded; the scheduler adds the service
   discipline: a depth counter capped at [queue_capacity] (reject beyond
   it — backpressure), and a deadline check on the queued→running edge
   (a request whose deadline lapsed while waiting is dropped without
   being run). *)

type error =
  | Overloaded of { depth : int; capacity : int }
  | Deadline_exceeded of { waited_ms : float; deadline_ms : float }

let error_to_string = function
  | Overloaded { depth; capacity } ->
    Fmt.str "overloaded: %d requests queued or running (capacity %d)" depth
      capacity
  | Deadline_exceeded { waited_ms; deadline_ms } ->
    Fmt.str "deadline exceeded: queued %.1f ms past the %.1f ms deadline"
      waited_ms deadline_ms

type t = {
  pool : Engine.Pool.t;
  capacity : int;
  default_deadline_ms : float option;
  mutex : Mutex.t;
  mutable depth : int;
  (* per-instance mirrors of the global counters, for per-server stats *)
  mutable submitted_n : int;
  mutable rejected_n : int;
  mutable completed_n : int;
  mutable expired_n : int;
}

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  expired : int;
  depth : int;
  capacity : int;
}

type 'a ticket = ('a, error) result Engine.Pool.future

let submitted = lazy (Obs.Metrics.counter "serve.sched.submitted")
let rejected = lazy (Obs.Metrics.counter "serve.sched.rejected")
let completed = lazy (Obs.Metrics.counter "serve.sched.completed")
let expired = lazy (Obs.Metrics.counter "serve.sched.expired")
let depth_gauge = lazy (Obs.Metrics.gauge "serve.sched.depth")
let wait_hist = lazy (Obs.Metrics.histogram "serve.sched.wait_ms")

let create ?pool ~queue_capacity ?default_deadline_ms () =
  {
    pool = (match pool with Some p -> p | None -> Engine.Pool.default ());
    capacity = max 1 queue_capacity;
    default_deadline_ms;
    mutex = Mutex.create ();
    depth = 0;
    submitted_n = 0;
    rejected_n = 0;
    completed_n = 0;
    expired_n = 0;
  }

let depth (t : t) =
  Mutex.lock t.mutex;
  let d = t.depth in
  Mutex.unlock t.mutex;
  d

let queue_capacity (t : t) = t.capacity

let set_depth_gauge (t : t) =
  Obs.Metrics.Gauge.set (Lazy.force depth_gauge) (float_of_int t.depth)

let submit t ?deadline_ms (f : unit -> 'a) : ('a ticket, error) result =
  let deadline_ms =
    match deadline_ms with Some _ as d -> d | None -> t.default_deadline_ms
  in
  Mutex.lock t.mutex;
  if t.depth >= t.capacity then begin
    let d = t.depth in
    Mutex.unlock t.mutex;
    Obs.Metrics.Counter.incr (Lazy.force rejected);
    Mutex.lock t.mutex;
    t.rejected_n <- t.rejected_n + 1;
    Mutex.unlock t.mutex;
    Error (Overloaded { depth = d; capacity = t.capacity })
  end
  else begin
    t.depth <- t.depth + 1;
    t.submitted_n <- t.submitted_n + 1;
    set_depth_gauge t;
    Mutex.unlock t.mutex;
    Obs.Metrics.Counter.incr (Lazy.force submitted);
    let admitted_ns = Obs.Clock.now_ns () in
    let job () =
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.mutex;
          t.depth <- t.depth - 1;
          set_depth_gauge t;
          Mutex.unlock t.mutex)
        (fun () ->
          let waited_ms =
            float_of_int (Obs.Clock.now_ns () - admitted_ns) /. 1e6
          in
          Obs.Metrics.Histogram.observe (Lazy.force wait_hist) waited_ms;
          match deadline_ms with
          | Some budget when waited_ms > budget ->
            Obs.Metrics.Counter.incr (Lazy.force expired);
            Mutex.lock t.mutex;
            t.expired_n <- t.expired_n + 1;
            Mutex.unlock t.mutex;
            Error (Deadline_exceeded { waited_ms; deadline_ms = budget })
          | _ ->
            let v = f () in
            Obs.Metrics.Counter.incr (Lazy.force completed);
            Mutex.lock t.mutex;
            t.completed_n <- t.completed_n + 1;
            Mutex.unlock t.mutex;
            Ok v)
    in
    Ok (Engine.Pool.submit t.pool job)
  end

let await (ticket : 'a ticket) : ('a, error) result = Engine.Pool.await ticket

let run t ?deadline_ms f =
  match submit t ?deadline_ms f with
  | Error e -> Error e
  | Ok ticket -> await ticket

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      submitted = t.submitted_n;
      rejected = t.rejected_n;
      completed = t.completed_n;
      expired = t.expired_n;
      depth = t.depth;
      capacity = t.capacity;
    }
  in
  Mutex.unlock t.mutex;
  s
