(* Partitioned datasets — the engine's unit of distribution.

   A dataset is an array of partitions.  Each partition holds tuples
   already expanded to their multiplicities (like rows of a Spark
   DataFrame), stored either as a row list or as a columnar
   {!Columnar.t} batch.  The row view ([partitions]/[to_list]) stays
   the semantic boundary: columnar partitions reconstruct rows on
   demand, so callers that think in trees keep working unchanged while
   vectorized operators move contiguous column slices. *)

open Nested

(* A checkpointed partition: durable on disk at [ck_path], usually also
   cached in memory.  [ck_state] says why the cache is empty — [Lost]
   (a recovery dropped it, so the next fetch is a replay-from-
   checkpoint) or [Spilled] (the memory watermark evicted it) — which
   is exactly the attribution the recover/spill counters need.
   [ck_recompute] is the lineage fallback: re-derive this partition
   from upstream when the file fails its CRC. *)
type ck_state = Live | Spilled | Lost

type ckpt = {
  ck_path : string;
  ck_rows : int;
  mutable ck_cache : Columnar.t option;
  mutable ck_state : ck_state;
  ck_recompute : (unit -> Columnar.t) option;
}

type part = Rows of Value.t list | Cols of Columnar.t | Ckpt of ckpt

type t = { parts : part array }

(* A spilled partition's file was its only copy (no lineage fallback)
   and failed its CRC on restore.  Spill files are verified at write
   time, so this means on-disk corruption or an external delete after
   the spill — a hard failure of the query, deliberately not
   [Fault.Transient]: re-reading the same bad file cannot succeed. *)
exception Spill_lost of string

let site_partition = Obs.Faultinject.register_site "engine.partition"
let site_shuffle_write = Obs.Faultinject.register_site "engine.shuffle.write"
let site_shuffle_read = Obs.Faultinject.register_site "engine.shuffle.read"
let m_from_ckpt = lazy (Obs.Metrics.counter "engine.recover.from_checkpoint")
let m_from_source = lazy (Obs.Metrics.counter "engine.recover.from_source")

let m_replayed =
  lazy (Obs.Metrics.counter "engine.recover.replayed_partitions")

let m_spill_bytes = lazy (Obs.Metrics.counter "engine.spill.bytes")
let m_spill_batches = lazy (Obs.Metrics.counter "engine.spill.batches")
let m_spill_restores = lazy (Obs.Metrics.counter "engine.spill.restores")

let m_write_failures =
  lazy (Obs.Metrics.counter "engine.checkpoint.write_failures")

let bump m = Obs.Metrics.Counter.incr (Lazy.force m)

(* Bring a checkpointed partition back into memory.  A CRC failure
   falls back to the lineage recompute (and best-effort re-writes the
   file); transient faults from the chaos site propagate so the
   enclosing task retry recovers them. *)
let ckpt_fetch (c : ckpt) : Columnar.t =
  match c.ck_cache with
  | Some b -> b
  | None ->
    let b =
      match
        Obs.Faultinject.fire site_shuffle_read;
        Checkpoint.read ~path:c.ck_path
      with
      | b ->
        (match c.ck_state with
        | Lost -> bump m_from_ckpt
        | Spilled -> bump m_spill_restores
        | Live -> ());
        b
      | exception Checkpoint.Corrupt msg -> (
        match c.ck_recompute with
        | None ->
          raise
            (Spill_lost
               (Fmt.str "spilled partition %s unreadable: %s" c.ck_path msg))
        | Some recompute ->
          bump m_from_source;
          let b = recompute () in
          (try ignore (Checkpoint.write ~path:c.ck_path b)
           with _ -> bump m_write_failures);
          b)
    in
    c.ck_cache <- Some b;
    c.ck_state <- Live;
    b

let part_rows = function
  | Rows l -> l
  | Cols b -> Columnar.to_rows b
  | Ckpt c -> Columnar.to_rows (ckpt_fetch c)

let part_cols = function
  | Cols b -> b
  | Rows l -> Columnar.of_rows l
  | Ckpt c -> ckpt_fetch c

let part_length = function
  | Rows l -> List.length l
  | Cols b -> Columnar.length b
  | Ckpt c -> c.ck_rows

let of_partitions partitions = { parts = Array.map (fun l -> Rows l) partitions }
let of_cpartitions batches = { parts = Array.map (fun b -> Cols b) batches }
let partitions d = Array.map part_rows d.parts
let cpartitions d = Array.map part_cols d.parts
let cpartition d i = part_cols d.parts.(i)
let partition d i = part_rows d.parts.(i)
let partition_count d = Array.length d.parts
let cardinal d = Array.fold_left (fun acc p -> acc + part_length p) 0 d.parts

let to_list (d : t) : Value.t list =
  List.concat_map part_rows (Array.to_list d.parts)

(* Hash of a value, stable across runs (no use of OCaml's randomized
   hashing).  The columnar engine vectorizes the identical function
   ({!Columnar.hash_col}), so both layouts shuffle rows to the same
   partitions. *)
let value_hash = Columnar.value_hash

(* Distribute a list of tuples round-robin over [n] partitions. *)
let distribute ~partitions:n (rows : Value.t list) : t =
  let n = max 1 n in
  let parts = Array.make n [] in
  List.iteri (fun i row -> parts.(i mod n) <- row :: parts.(i mod n)) rows;
  { parts = Array.map (fun l -> Rows (List.rev l)) parts }

(* Round-robin distribution of a columnar batch: partition [i] takes
   rows [i, i+n, ...] — the same rows, in the same order, as
   [distribute] over the reconstructed list. *)
let distribute_cols ~partitions:n (b : Columnar.t) : t =
  let n = max 1 n in
  let total = Columnar.length b in
  { parts =
      Array.init n (fun i ->
          let m = if total <= i then 0 else 1 + ((total - i - 1) / n) in
          Cols (Columnar.gather b (Array.init m (fun j -> i + (j * n)))));
  }

(* Row-path shuffle body, shared between the public entry point and the
   recompute closures of its checkpoint barrier.  Returns the row
   partitions and the number of rows moved across partitions. *)
let shuffle_by_raw ~partitions:n (key : Value.t -> Value.t) (d : t) :
    Value.t list array * int =
  let n = max 1 n in
  let parts = Array.make n [] in
  let moved = ref 0 in
  Array.iteri
    (fun src p ->
      List.iter
        (fun row ->
          (* [land max_int] rather than [abs]: [abs min_int] is negative
             (it overflows), which would make [dst] out of bounds. *)
          let dst = value_hash (key row) land max_int mod n in
          if dst <> src then incr moved;
          parts.(dst) <- row :: parts.(dst))
        (part_rows p))
    d.parts;
  (Array.map List.rev parts, !moved)

(* Vectorized shuffle body, shared with the barrier recompute closures:
   [hash_of] produces one destination hash per row of a batch; moved
   rows travel as contiguous gathered column slices, and the bytes
   shipped are reported on the [engine.columnar.bytes_moved] counter. *)
let shuffle_hashed_raw ~partitions:n (hash_of : Columnar.t -> int array)
    (d : t) : Columnar.t array * int =
  let n = max 1 n in
  let bs = cpartitions d in
  let moved = ref 0 and bytes = ref 0 in
  let dests = Array.make n [] in
  Array.iteri
    (fun src b ->
      let h = hash_of b in
      let idxs = Array.make n [] in
      Array.iteri
        (fun i hv ->
          let dst = hv land max_int mod n in
          if dst <> src then incr moved;
          idxs.(dst) <- i :: idxs.(dst))
        h;
      for dst = 0 to n - 1 do
        match idxs.(dst) with
        | [] -> ()
        | l ->
          let slice = Columnar.gather b (Array.of_list (List.rev l)) in
          if dst <> src then bytes := !bytes + Columnar.bytes slice;
          dests.(dst) <- slice :: dests.(dst)
      done)
    bs;
  Columnar.note_bytes_moved !bytes;
  (Array.map (fun l -> Columnar.vstack (List.rev l)) dests, !moved)

(* Make one post-shuffle partition a durable recovery root.  Any
   failure — the armed chaos site or real IO trouble — degrades
   gracefully: the in-memory partition is kept and only the recovery
   shortcut is lost. *)
let checkpoint_part ~label ~index ~recompute (b : Columnar.t) : part =
  try
    Obs.Faultinject.fire site_shuffle_write;
    let path = Checkpoint.fresh_path ~label:(Fmt.str "%s-p%d" label index) in
    ignore (Checkpoint.write ~path b);
    Ckpt
      {
        ck_path = path;
        ck_rows = Columnar.length b;
        ck_cache = Some b;
        ck_state = Live;
        ck_recompute = recompute;
      }
  with _ ->
    bump m_write_failures;
    Cols b

(* One memoized re-shuffle shared by every partition's recompute
   closure: recovering k lost partitions of the same barrier costs one
   upstream shuffle, not k.  Mutex-guarded — the closures run from pool
   worker domains, where an OCaml [Lazy.t] would not be safe.  The
   closures still pin the upstream dataset [d] (the memo's input) for
   the checkpointed dataset's lifetime; that is the price of CRC
   fallback and is invisible to [memory_bytes] — see DESIGN.md. *)
let memo_shuffle (run : unit -> 'a) : unit -> 'a =
  let mu = Mutex.create () in
  let memo = ref None in
  fun () ->
    Mutex.protect mu (fun () ->
        match !memo with
        | Some ps -> ps
        | None ->
          let ps = run () in
          memo := Some ps;
          ps)

(* Repartition by a key function (a shuffle).  With [barrier], every
   output partition is checkpointed under that label — lineage
   downstream of this point is truncated here. *)
let shuffle_by ?barrier ~partitions:n (key : Value.t -> Value.t) (d : t) :
    t * int =
  let parts, moved = shuffle_by_raw ~partitions:n key d in
  match barrier with
  | None -> ({ parts = Array.map (fun l -> Rows l) parts }, moved)
  | Some label ->
    let recomputed =
      memo_shuffle (fun () -> fst (shuffle_by_raw ~partitions:n key d))
    in
    ( {
        parts =
          Array.mapi
            (fun i l ->
              let recompute () = Columnar.of_rows (recomputed ()).(i) in
              checkpoint_part ~label ~index:i ~recompute:(Some recompute)
                (Columnar.of_rows l))
            parts;
      },
      moved )

(* Vectorized shuffle; [barrier] as in {!shuffle_by}. *)
let shuffle_hashed ?barrier ~partitions:n (hash_of : Columnar.t -> int array)
    (d : t) : t * int =
  let batches, moved = shuffle_hashed_raw ~partitions:n hash_of d in
  match barrier with
  | None -> ({ parts = Array.map (fun b -> Cols b) batches }, moved)
  | Some label ->
    let recomputed =
      memo_shuffle (fun () -> fst (shuffle_hashed_raw ~partitions:n hash_of d))
    in
    ( {
        parts =
          Array.mapi
            (fun i b ->
              let recompute () = (recomputed ()).(i) in
              checkpoint_part ~label ~index:i ~recompute:(Some recompute) b)
            batches;
      },
      moved )

(* Collapse to a single partition (a gather). *)
let gather (d : t) : t * int =
  let all_cols =
    Array.for_all
      (function Cols _ | Ckpt _ -> true | Rows _ -> false)
      d.parts
  in
  if all_cols then begin
    let b = Columnar.vstack (Array.to_list (cpartitions d)) in
    Columnar.note_bytes_moved (Columnar.bytes b);
    ({ parts = [| Cols b |] }, Columnar.length b)
  end
  else
    let rows = to_list d in
    ({ parts = [| Rows rows |] }, List.length rows)

(* Simulate losing a partition before a task re-attempt: a checkpointed
   partition drops its in-memory cache so the replay re-reads the
   recovery root; an in-memory partition has only its immutable source
   input as lineage, so its replay is a recompute from source. *)
let recover_part (p : part) =
  bump m_replayed;
  match p with
  | Ckpt c ->
    c.ck_cache <- None;
    c.ck_state <- Lost
  | Rows _ | Cols _ -> bump m_from_source

let recover_partition (d : t) i = recover_part d.parts.(i)

(* [parallel] fans the partitions out over the shared domain {!Pool}
   (the engine's stand-in for a DISC system's task parallelism) instead
   of spawning a fresh domain per partition per operator, which cost
   more than it bought.  [f] must be pure.

   Every partition is a *task attempt*: under [retry], a task that
   raises [Fault.Transient] is recomputed — from its immutable input
   partition (our lineage is the closure plus the input, so
   recomputation is exact — the Spark task-retry model), or, when the
   input is a checkpointed shuffle partition, from the checkpoint file
   ({!recover_part} drops the cache before the re-attempt, truncating
   the replay at the barrier).  The ["engine.partition"] chaos site
   fires once per attempt, inside the retry scope, so an armed fault on
   one attempt is survived by the next. *)
let map_parts_generic ?(parallel = false) ?pool ?(retry = Fault.no_retry)
    ?(label = "partition") ?on_retry (f : part -> part) (d : t) : t =
  let task _i (p : part) () =
    Obs.Faultinject.fire site_partition;
    f p
  and fault_retry i p =
    Some
      (fun ~attempt e ->
        recover_part p;
        match on_retry with
        | Some cb -> cb ~partition:i ~attempt e
        | None -> ())
  in
  let run i p =
    Fault.protect ~policy:retry
      ~task:(Fmt.str "%s/p%d" label i)
      ~task_id:i ?on_retry:(fault_retry i p) (task i p)
  in
  if (not parallel) || Array.length d.parts <= 1 then
    { parts = Array.mapi run d.parts }
  else
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let indexed = Array.mapi (fun i p -> (i, p)) d.parts in
    { parts = Pool.map_array pool (fun (i, p) -> run i p) indexed }

let map_partitions ?parallel ?pool ?retry ?label ?on_retry
    (f : Value.t list -> Value.t list) (d : t) : t =
  map_parts_generic ?parallel ?pool ?retry ?label ?on_retry
    (fun p -> Rows (f (part_rows p)))
    d

(* Columnar sibling of {!map_partitions}: same task-attempt semantics
   (chaos site, retries), batch-in/batch-out. *)
let map_cpartitions ?parallel ?pool ?retry ?label ?on_retry
    (f : Columnar.t -> Columnar.t) (d : t) : t =
  map_parts_generic ?parallel ?pool ?retry ?label ?on_retry
    (fun p -> Cols (f (part_cols p)))
    d

(* --- Spill ---------------------------------------------------------

   The watermark bounds the dataset's *resident* footprint: columnar
   partitions report their arena size exactly; row partitions (the
   escape-hatch engine) are estimated, since sizing a tree precisely
   would cost as much as converting it. *)

let part_mem_bytes = function
  | Rows l -> 128 * List.length l
  | Cols b -> Columnar.bytes b
  | Ckpt { ck_cache = Some b; _ } -> Columnar.bytes b
  | Ckpt { ck_cache = None; _ } -> 0

let memory_bytes (d : t) =
  Array.fold_left (fun acc p -> acc + part_mem_bytes p) 0 d.parts

(* Evict partitions largest-first until the dataset fits under the
   watermark.  Checkpointed partitions just drop their cache (the disk
   copy is the spill); in-memory partitions are written to the
   checkpoint store first.  A failed write keeps the partition resident
   — degraded, never wrong.  Returns the bytes freed. *)
let spill_over ~watermark (d : t) : int =
  let sizes = Array.map part_mem_bytes d.parts in
  let total = Array.fold_left ( + ) 0 sizes in
  if total <= watermark then 0
  else begin
    let order = Array.init (Array.length sizes) Fun.id in
    Array.sort (fun a b -> compare sizes.(b) sizes.(a)) order;
    let freed = ref 0 in
    (try
       Array.iter
         (fun i ->
           if total - !freed <= watermark then raise Exit;
           match d.parts.(i) with
           | Ckpt ({ ck_cache = Some _; _ } as c) ->
             c.ck_cache <- None;
             c.ck_state <- Spilled;
             freed := !freed + sizes.(i);
             bump m_spill_batches;
             Obs.Metrics.Counter.incr ~by:sizes.(i) (Lazy.force m_spill_bytes)
           | Ckpt _ -> ()
           | (Rows _ | Cols _) as p -> (
             let b = part_cols p in
             try
               let path = Checkpoint.fresh_path ~label:"spill" in
               ignore (Checkpoint.write ~path b);
               (* The file is about to become the *only* copy of this
                  partition (no lineage fallback), so verify the frame
                  before dropping the resident data: a garbled write
                  keeps the partition in memory — degraded, never
                  lost. *)
               if not (Checkpoint.verify ~path) then begin
                 (try Sys.remove path with Sys_error _ -> ());
                 bump m_write_failures
               end
               else begin
                 d.parts.(i) <-
                   Ckpt
                     {
                       ck_path = path;
                       ck_rows = Columnar.length b;
                       ck_cache = None;
                       ck_state = Spilled;
                       ck_recompute = None;
                     };
                 freed := !freed + sizes.(i);
                 bump m_spill_batches;
                 Obs.Metrics.Counter.incr ~by:sizes.(i)
                   (Lazy.force m_spill_bytes)
               end
             with _ -> bump m_write_failures))
         order
     with Exit -> ());
    !freed
  end

let of_relation ~partitions (r : Relation.t) : t =
  if Columnar.row_engine () then distribute ~partitions (Relation.tuples r)
  else distribute_cols ~partitions (Columnar.of_relation r)

let to_relation ~schema (d : t) : Relation.t =
  Relation.of_tuples ~schema (to_list d)
