lib/core/alternatives.mli: Nested Nrab Opset Path Query Typecheck
