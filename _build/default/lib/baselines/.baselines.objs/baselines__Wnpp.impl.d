lib/baselines/wnpp.ml: Explanation_set Lineage List Nrab Whynot
