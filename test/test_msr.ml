(* MSR-computation tests: failure sets, the literal queue-based
   Algorithm 4, the contributing-rows closure, and side-effect bounds —
   all on the paper's running example. *)

open Nested
open Nrab
module Nip = Whynot.Nip
module Int_set = Whynot.Msr.Int_set
module Set_set = Whynot.Msr.Set_set

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let addr c y = Value.Tuple [ ("city", Value.String c); ("year", Value.Int y) ]

let person name a1 a2 =
  Value.Tuple
    [
      ("name", Value.String name);
      ("address1", Value.bag_of_list a1);
      ("address2", Value.bag_of_list a2);
    ]

let db =
  Relation.Db.of_list
    [
      ( "person",
        Relation.of_tuples ~schema:person_schema
          [
            person "Peter"
              [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
              [ addr "LA" 2010; addr "SF" 2018 ];
            person "Sue" [ addr "LA" 2019; addr "NY" 2018 ] [ addr "LA" 2019; addr "NY" 2018 ];
          ] );
    ]

let env = [ ("person", person_schema) ]

let query =
  let g = Query.Gen.create () in
  Query.nest_rel ~id:5 g [ "name" ] ~into:"nList"
    (Query.project_attrs ~id:4 g [ "name"; "city" ]
       (Query.select ~id:3 g
          (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
          (Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person"))))

let missing = Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.some_element) ]

let mk_trace sa_query changed description index =
  let sa =
    { Whynot.Alternatives.index; query = sa_query; changed_ops = changed; description }
  in
  let bt = Whynot.Backtrace.run ~env sa_query missing in
  Whynot.Tracing.run ~env db sa bt

let trace0 () = mk_trace query Int_set.empty "original" 0

let sets_to_lists s =
  List.sort compare (List.map Int_set.elements (Set_set.elements s))

let test_failure_sets_running_example () =
  let tr = trace0 () in
  let fs = Whynot.Msr.failure_sets tr in
  let consistent = Whynot.Msr.consistent_root_rids tr in
  Alcotest.(check int) "one consistent root (the NY group)" 1
    (List.length consistent);
  let root = List.hd consistent in
  Alcotest.(check (list (list int))) "its failure set is {σ}" [ [ 3 ] ]
    (sets_to_lists (fs root))

let test_contributing_closure () =
  let tr = trace0 () in
  let contrib = Whynot.Msr.contributing tr in
  (* the closure reaches down to Sue's input tuple *)
  let table_rows =
    match Whynot.Tracing.op_trace tr 1 with
    | Some ot -> Whynot.Tracing.rows ot
    | None -> []
  in
  let contributing_names =
    List.filter_map
      (fun (r : Whynot.Tracing.trow) ->
        if Hashtbl.mem contrib r.Whynot.Tracing.rid then
          Value.field "name" r.Whynot.Tracing.data
        else None)
      table_rows
  in
  Alcotest.(check bool) "Sue's tuple contributes" true
    (List.mem (Value.String "Sue") contributing_names)

let test_algorithm4_superset_of_failure_sets () =
  let tr = trace0 () in
  let alg4 = Whynot.Msr.algorithm4 tr in
  Alcotest.(check bool) "{σ} among Algorithm 4 candidates" true
    (Set_set.mem (Int_set.singleton 3) alg4);
  (* every failure-set explanation is an Algorithm 4 candidate *)
  let fs = Whynot.Msr.failure_sets tr in
  List.iter
    (fun rid ->
      Set_set.iter
        (fun set ->
          if not (Int_set.is_empty set) then
            Alcotest.(check bool)
              (Fmt.str "failure set {%s} covered"
                 (String.concat "," (List.map string_of_int (Int_set.elements set))))
              true (Set_set.mem set alg4))
        (fs rid))
    (Whynot.Msr.consistent_root_rids tr)

let test_algorithm4_never_blames_tables () =
  let tr = trace0 () in
  Set_set.iter
    (fun set ->
      Alcotest.(check bool) "no table access in candidates" false
        (Int_set.mem 1 set))
    (Whynot.Msr.algorithm4 tr)

let test_bounds () =
  let tr = trace0 () in
  let fs = Whynot.Msr.failure_sets tr in
  let original_result =
    Relation.tuples (Eval.eval db query)
  in
  let bi = { Whynot.Msr.original_result } in
  let lb, ub = Whynot.Msr.bounds ~bi ~q:query tr fs (Int_set.singleton 3) in
  (* the explanation contains a selection, so LB must be 0 (§5.4) *)
  Alcotest.(check int) "LB = 0 for selections" 0 lb;
  Alcotest.(check bool) "UB counts potential additions" true (ub >= 1)

let test_from_trace_explanations () =
  let tr = trace0 () in
  let bi = { Whynot.Msr.original_result = Relation.tuples (Eval.eval db query) } in
  let expls = Whynot.Msr.from_trace ~bi ~q:query tr in
  Alcotest.(check (list (list int))) "SA0 contributes {σ}" [ [ 3 ] ]
    (List.sort compare (List.map Whynot.Explanation.op_list expls))

let () =
  Alcotest.run "msr"
    [
      ( "failure-sets",
        [
          Alcotest.test_case "running example" `Quick test_failure_sets_running_example;
          Alcotest.test_case "contributing closure" `Quick test_contributing_closure;
        ] );
      ( "algorithm-4",
        [
          Alcotest.test_case "superset of failure sets" `Quick
            test_algorithm4_superset_of_failure_sets;
          Alcotest.test_case "never blames tables" `Quick
            test_algorithm4_never_blames_tables;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "side-effect bounds" `Quick test_bounds;
          Alcotest.test_case "from_trace" `Quick test_from_trace_explanations;
        ] );
    ]
