lib/datagen/prng.ml: Int64 List
