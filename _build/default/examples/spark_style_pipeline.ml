(* A Spark-style debugging session end to end:

   1. load nested data from JSON (the interchange format a DISC system
      would store it in),
   2. write the pipeline with the fluent DataFrame combinators,
   3. state the why-not question in the surface pattern syntax,
   4. get ranked explanations and concrete repair suggestions.

     dune exec examples/spark_style_pipeline.exe *)

open Nrab

let data =
  {json|
  {
    "person": {
      "schema": [{"name": "string",
                  "address1": [{"city": "string", "year": "int"}],
                  "address2": [{"city": "string", "year": "int"}]}],
      "data": [
        {"name": "Peter",
         "address1": [{"city": "NY", "year": 2010}, {"city": "LA", "year": 2019},
                      {"city": "LV", "year": 2017}],
         "address2": [{"city": "LA", "year": 2010}, {"city": "SF", "year": 2018}]},
        {"name": "Sue",
         "address1": [{"city": "LA", "year": 2019}, {"city": "NY", "year": 2018}],
         "address2": [{"city": "LA", "year": 2019}, {"city": "NY", "year": 2018}]}
      ]
    }
  }
  |json}

let () =
  (* 1. load *)
  let db = Nested.Json.db_of_string data in

  (* 2. the pipeline, written the way it reads in Spark *)
  let report =
    Df.table "person"
    |> Df.explode "address2"
    |> Df.filter Expr.(Infix.( >= ) (attr "year") (int 2019))
    |> Df.select_cols [ "name"; "city" ]
    |> Df.group_nest [ "name" ] ~into:"nList"
  in
  Fmt.pr "pipeline: %a@.@." Query.pp (Df.plan report);
  Fmt.pr "result:@.";
  Df.show db report;

  (* 3. the why-not question, in the surface syntax *)
  let missing =
    Whynot.Nip_syntax.of_string "(tuple (city (str NY)) (nList (bag ? *)))"
  in
  Fmt.pr "@.why-not: %a@." Whynot.Nip.pp missing;
  let phi = Whynot.Question.make ~query:(Df.plan report) ~db ~missing in

  (* 4. explanations and repairs *)
  let result =
    Whynot.Pipeline.explain
      ~alternatives:[ ("person", [ [ "address2" ]; [ "address1" ] ]) ]
      phi
  in
  Fmt.pr "@.explanations:@.";
  List.iteri
    (fun i e ->
      Fmt.pr "  %d. %a@." (i + 1)
        (Whynot.Explanation.pp_with_query (Df.plan report))
        e;
      match Whynot.Repair.suggest ~max_suggestions:1 phi e with
      | s :: _ ->
        Fmt.pr "     %a@." (Whynot.Repair.pp_suggestion (Df.plan report)) s
      | [] -> ())
    result.Whynot.Pipeline.explanations
