lib/core/opset.ml: Int Set
