(* Approximate MSR computation (Section 5.4, Algorithm 4).

   Algorithm 4 walks the operators top-down and extends partial SRs with
   every operator op_j whose trace contains a tuple that is valid,
   consistent, NOT retained, and in the lineage of a consistent output
   tuple.  We compute the same SR sets per derivation instead of per
   existential check: for every consistent row of the root trace, the
   *failure sets* of its derivations — the sets of operators at which an
   ancestor row has retained = false — are exactly the operator sets that
   must be reparameterized for that row to materialize.  The SR prefix
   imposed by the schema alternative is then added, side-effect bounds are
   estimated as in Section 5.4, and explanations are pruned and ranked
   under the partial order of Definition 9. *)

open Nested
module Int_set = Opset.Int_set
module Set_set = Opset.Set_set

(* Cap on alternative failure sets tracked per row; beyond it the smallest
   sets are kept (they lead to the minimal explanations). *)
let max_alternatives = 64

let cap_sets (sets : Set_set.t) : Set_set.t =
  if Set_set.cardinal sets <= max_alternatives then sets
  else
    let sorted =
      List.sort
        (fun a b -> compare (Int_set.cardinal a) (Int_set.cardinal b))
        (Set_set.elements sets)
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    Set_set.of_list (take max_alternatives sorted)

(* Dense rid → owning operator map: rids are contiguous per operator, so
   one array lookup replaces the per-row hash index (and reads the
   annotation vectors directly — no per-row trees are forced). *)
let rid_owners (tr : Tracing.t) : Tracing.op_trace option array =
  let total =
    List.fold_left
      (fun acc ot -> max acc (Tracing.rid0 ot + Tracing.n_rows ot))
      0 tr.Tracing.ops
  in
  let owner = Array.make total None in
  List.iter
    (fun (ot : Tracing.op_trace) ->
      let r0 = Tracing.rid0 ot in
      for i = 0 to Tracing.n_rows ot - 1 do
        owner.(r0 + i) <- Some ot
      done)
    tr.Tracing.ops;
  owner

(* All alternative failure sets of a row's derivations. *)
let failure_sets (tr : Tracing.t) : int -> Set_set.t =
  let owner = rid_owners tr in
  let owner_of rid =
    if rid >= 0 && rid < Array.length owner then owner.(rid) else None
  in
  let memo = Hashtbl.create 256 in
  (* Parameter-free operators (Table 2) cannot be reparameterized; a row
     they fail to retain has no derivation under any reparameterization
     (its failure-set is the empty set of alternatives, ⊥). *)
  let reparameterizable (node : Nrab.Query.node) =
    match node with
    | Nrab.Query.Table _ | Nrab.Query.Union | Nrab.Query.Diff
    | Nrab.Query.Dedup | Nrab.Query.Product ->
      false
    | _ -> true
  in
  let rec fs (rid : int) : Set_set.t =
    match Hashtbl.find_opt memo rid with
    | Some s -> s
    | None ->
      Hashtbl.replace memo rid (Set_set.singleton Int_set.empty)
      (* cycle guard; traces are acyclic so this is never observed *);
      let result =
        match owner_of rid with
        | None -> Set_set.singleton Int_set.empty
        | Some ot
          when (not (Tracing.retained_at ot (rid - Tracing.rid0 ot)))
               && not (reparameterizable ot.Tracing.op_node) ->
          Set_set.empty
        | Some ot ->
          let i = rid - Tracing.rid0 ot in
          let parents = Tracing.parents_at ot i in
          let own =
            if Tracing.retained_at ot i then Int_set.empty
            else Int_set.singleton ot.Tracing.op_id
          in
          let combine_parents (parents : int list) : Set_set.t =
            (* cross-product union over parents (joins have two) *)
            List.fold_left
              (fun acc pid ->
                let psets = fs pid in
                cap_sets
                  (Set_set.fold
                     (fun a acc' ->
                       Set_set.fold
                         (fun b acc'' -> Set_set.add (Int_set.union a b) acc'')
                         psets acc')
                     acc Set_set.empty))
              (Set_set.singleton Int_set.empty)
              parents
          in
          let base =
            match ot.Tracing.op_node with
            | Nrab.Query.Nest_rel _ | Nrab.Query.Group_agg _
            | Nrab.Query.Dedup | Nrab.Query.Agg_tuple _ ->
              (* group-style operators: each (preferably consistent) member
                 derivation is an alternative way to influence the row *)
              let members =
                List.filter (fun pid -> Option.is_some (owner_of pid)) parents
              in
              let pid_consistent pid =
                match owner_of pid with
                | Some pot ->
                  Tracing.consistent_at pot (pid - Tracing.rid0 pot)
                | None -> false
              in
              let preferred =
                match List.filter pid_consistent members with
                | [] -> members
                | cs -> cs
              in
              let alternatives =
                List.fold_left
                  (fun acc pid -> Set_set.union acc (fs pid))
                  Set_set.empty preferred
              in
              (* all member derivations dead ⇒ this row is dead too,
                 unless it genuinely has no parents *)
              if Set_set.is_empty alternatives then
                if parents = [] then Set_set.singleton Int_set.empty
                else Set_set.empty
              else cap_sets alternatives
            | _ -> combine_parents parents
          in
          cap_sets (Set_set.map (fun s -> Int_set.union s own) base)
      in
      Hashtbl.replace memo rid result;
      result
  in
  fs

(* The root operator's trace, and its consistent rows (the candidate
   missing answers) by rid — flag-vector reads, no tree reconstruction. *)
let root_ot (tr : Tracing.t) : Tracing.op_trace option =
  Tracing.op_trace tr tr.Tracing.root_op

let consistent_root_rids (tr : Tracing.t) : int list =
  match root_ot tr with
  | None -> []
  | Some ot ->
    let r0 = Tracing.rid0 ot in
    List.filter_map
      (fun i -> if Tracing.consistent_at ot i then Some (r0 + i) else None)
      (List.init (Tracing.n_rows ot) Fun.id)

(* --- Side-effect bounds (Section 5.4) ----------------------------------- *)

type bounds_input = {
  original_result : Value.t list;  (* tuples of ⟦Q⟧_D, expanded *)
}

let contains_filtering_op (q : Nrab.Query.t) (ops : Int_set.t) : bool =
  Int_set.exists
    (fun id ->
      match Nrab.Query.find_op q id with
      | Some op -> (
        match op.Nrab.Query.node with
        | Nrab.Query.Select _ | Nrab.Query.Join _ -> true
        | _ -> false)
      | None -> false)
    ops

(* Candidate-independent part of the bounds computation, hoisted so one
   sweep over the root rows serves every candidate of a trace: the
   surviving(-and-matching) counts are the same for all candidates, and
   only the non-surviving rows' failure sets feed the per-candidate
   UB(Δ+) scan. *)
type bounds_ctx = {
  cq : Nrab.Query.t;
  original_count : int;
  stride : int;
      (* 1 = exact sweep; s > 1 = every s-th root row (by global rid)
         was examined and the counts below are scaled-up estimates *)
  n_surviving : int;
  ub_minus : int;
      (* UB(Δ−): original tuples whose presence is not witnessed
         unchanged — a floor shared by every candidate's upper bound *)
  nonsurviving : Set_set.t array;
      (* failure sets of each (sampled) non-surviving root row *)
}

let bounds_ctx ?(sample_stride = 1) ~(bi : bounds_input)
    ~(q : Nrab.Query.t) (tr : Tracing.t) (fs : int -> Set_set.t) : bounds_ctx
    =
  let stride = max 1 sample_stride in
  let original_count = List.length bi.original_result in
  (* Bucket the original result by structural hash so each root row is
     compared against at most its hash-colliding candidates. *)
  let orig_tbl : (int, Value.t list ref) Hashtbl.t =
    Hashtbl.create (original_count + 7)
  in
  List.iter
    (fun v ->
      let h = Engine.Columnar.value_hash v in
      match Hashtbl.find_opt orig_tbl h with
      | Some l -> l := v :: !l
      | None -> Hashtbl.add orig_tbl h (ref [ v ]))
    bi.original_result;
  let in_original data =
    match Hashtbl.find_opt orig_tbl (Engine.Columnar.value_hash data) with
    | None -> false
    | Some l -> List.exists (Value.equal data) !l
  in
  (* Flag-vector sweep over the root rows; trees are reconstructed only
     for the surviving rows that must be matched against the original
     result.  With a stride, only every s-th row (keyed on the global
     rid, like the tracing sampler, so both engines sample identically)
     is examined — this sweep dominates MSR time on large inputs, and
     the counts scale back up into unbiased estimates. *)
  let n_surviving_matching = ref 0
  and n_surviving_ = ref 0
  and nonsurv = ref [] in
  (match root_ot tr with
  | None -> ()
  | Some ot ->
    let r0 = Tracing.rid0 ot in
    for i = 0 to Tracing.n_rows ot - 1 do
      if (r0 + i) mod stride = 0 then
        if Tracing.surviving_at ot i then begin
          incr n_surviving_;
          if in_original (Tracing.data_at ot i) then incr n_surviving_matching
        end
        else nonsurv := fs (r0 + i) :: !nonsurv
    done);
  {
    cq = q;
    original_count;
    stride;
    n_surviving = stride * !n_surviving_;
    ub_minus = max 0 (original_count - (stride * !n_surviving_matching));
    nonsurviving = Array.of_list (List.rev !nonsurv);
  }

let bounds_with (ctx : bounds_ctx) (expl_ops : Int_set.t) : int * int =
  (* UB(Δ+): rows that may newly appear when the explanation's operators
     are reparameterized (scaled back up when the sweep was sampled) *)
  let ub_plus =
    ctx.stride
    * Array.fold_left
        (fun acc sets ->
          if Set_set.exists (fun s -> Int_set.subset s expl_ops) sets then
            acc + 1
          else acc)
        0 ctx.nonsurviving
  in
  let lb =
    if contains_filtering_op ctx.cq expl_ops then 0
    else max 0 (ctx.n_surviving - ctx.original_count) + ctx.ub_minus
  in
  (lb, ub_plus + ctx.ub_minus)

let bounds ~(bi : bounds_input) ~(q : Nrab.Query.t) (tr : Tracing.t)
    (fs : int -> Set_set.t) (expl_ops : Int_set.t) : int * int =
  bounds_with (bounds_ctx ~bi ~q tr fs) expl_ops

(* --- Literal Algorithm 4 (queue-based) ----------------------------------

   The paper's pseudocode walks the linearized operator list top-down with
   a queue of partial SRs and *existential* per-operator conditions.  The
   failure-set computation above refines these conditions per derivation;
   Algorithm 4's candidate sets are a superset of the failure-set ones
   (tested), at the price of more false candidates when different rows
   witness the extend/skip conditions. *)

(* Rows (by rid) that contribute to a consistent root row — the "lineage
   of a consistent output tuple" of Algorithm 4, computed as the ancestor
   closure over parent edges. *)
let contributing (tr : Tracing.t) : (int, unit) Hashtbl.t =
  let owner = rid_owners tr in
  let marked = Hashtbl.create 256 in
  let rec mark rid =
    if not (Hashtbl.mem marked rid) then begin
      Hashtbl.replace marked rid ();
      if rid >= 0 && rid < Array.length owner then
        match owner.(rid) with
        | Some ot ->
          List.iter mark (Tracing.parents_at ot (rid - Tracing.rid0 ot))
        | None -> ()
    end
  in
  List.iter mark (consistent_root_rids tr);
  marked

let algorithm4 (tr : Tracing.t) : Set_set.t =
  let contrib = contributing tr in
  let prefix = tr.Tracing.sa.Alternatives.changed_ops in
  (* linearized operator list, root first (top-down) *)
  let ops = List.rev tr.Tracing.ops in
  let conditions (ot : Tracing.op_trace) =
    let r0 = Tracing.rid0 ot in
    let extend = ref false and skip = ref false in
    for i = 0 to Tracing.n_rows ot - 1 do
      if Hashtbl.mem contrib (r0 + i) && Tracing.consistent_at ot i then
        if Tracing.retained_at ot i then skip := true else extend := true
    done;
    (!extend, !skip)
  in
  let reparameterizable (ot : Tracing.op_trace) =
    match ot.Tracing.op_node with
    | Nrab.Query.Table _ | Nrab.Query.Dedup | Nrab.Query.Union
    | Nrab.Query.Diff | Nrab.Query.Product ->
      false
    | _ -> true
  in
  let results = ref Set_set.empty in
  let add sr = if not (Int_set.is_empty sr) then results := Set_set.add sr !results in
  (* queue elements: remaining operator list × current partial SR *)
  let queue = Queue.create () in
  Queue.add (ops, prefix) queue;
  (* visited guard: (number of remaining ops, SR) *)
  let seen = Hashtbl.create 64 in
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | [], sr -> add sr
    | ot :: rest, sr ->
      let key = (List.length rest, Int_set.elements sr) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        let extend, skip = conditions ot in
        let extend = extend && reparameterizable ot in
        if extend then begin
          let extended = Int_set.add ot.Tracing.op_id sr in
          add extended;
          Queue.add (rest, extended) queue
        end;
        if skip then begin
          add sr;
          Queue.add (rest, sr) queue
        end;
        if (not extend) && not skip then
          (* no consistent contributing tuple at this operator at all:
             continue with the unchanged SR (nothing to decide here) *)
          Queue.add (rest, sr) queue
      end
  done;
  !results

(* --- Explanation assembly ------------------------------------------------ *)

(* Candidate operator sets of one trace: the failure sets of every
   consistent root row, each unioned with the SA's SR prefix, minus the
   empty set (which would mean the answer is not missing at all). *)
let candidate_sets (tr : Tracing.t) (fs : int -> Set_set.t) : Set_set.t =
  let prefix = tr.Tracing.sa.Alternatives.changed_ops in
  let sets =
    List.fold_left
      (fun acc rid ->
        Set_set.fold
          (fun s acc -> Set_set.add (Int_set.union prefix s) acc)
          (fs rid) acc)
      Set_set.empty (consistent_root_rids tr)
  in
  Set_set.remove Int_set.empty sets

(* Explanations contributed by one schema alternative's trace.  The
   stride samples only the bounds sweep: the candidate operator sets come
   from the consistent root rows' failure sets either way, so a sampled
   run finds the same explanations with estimated side-effect bounds. *)
let from_trace ?sample_stride ~(bi : bounds_input) ~(q : Nrab.Query.t)
    (tr : Tracing.t) : Explanation.t list =
  let fs = failure_sets tr in
  let ctx = bounds_ctx ?sample_stride ~bi ~q tr fs in
  let sa_index = tr.Tracing.sa.Alternatives.index in
  List.map
    (fun ops ->
      let lb, ub = bounds_with ctx ops in
      Explanation.make ~sa:sa_index ~lb ~ub ops)
    (Set_set.elements (candidate_sets tr fs))

(* Early-terminating top-k variant.  Candidates are evaluated in the
   dominant order of [Explanation.rank] — (cardinality, elements) — and
   the walk stops once k already-evaluated explanations *provably* rank
   ahead of every candidate still open.  The proof obligation uses two
   facts: candidates still open have cardinality ≥ the next candidate's
   (sorted order), and every candidate's upper bound is ≥ [ctx.ub_minus]
   (UB(Δ−) is candidate-independent).  So a kept explanation beats all
   open candidates when its cardinality is strictly smaller, or equal
   with a side-effect UB strictly below that shared floor.  Returns the
   evaluated explanations (a superset of the true top k, still to be
   pruned/ranked across SAs) and the number of candidates skipped. *)
let from_trace_topk ?sample_stride ~(bi : bounds_input) ~(q : Nrab.Query.t)
    ~(k : int) (tr : Tracing.t) : Explanation.t list * int =
  let fs = failure_sets tr in
  let ctx = bounds_ctx ?sample_stride ~bi ~q tr fs in
  let sa_index = tr.Tracing.sa.Alternatives.index in
  let k = max 1 k in
  let candidates =
    List.sort
      (fun a b ->
        let c = compare (Int_set.cardinal a) (Int_set.cardinal b) in
        if c <> 0 then c
        else compare (Int_set.elements a) (Int_set.elements b))
      (Set_set.elements (candidate_sets tr fs))
  in
  let beats_open ~open_card (e : Explanation.t) =
    let ec = Int_set.cardinal e.Explanation.ops in
    ec < open_card
    || (ec = open_card && e.Explanation.side_effect_ub < ctx.ub_minus)
  in
  let kept = ref [] and n_kept = ref 0 and skipped = ref 0 in
  let rec go = function
    | [] -> ()
    | ops :: rest ->
      let open_card = Int_set.cardinal ops in
      let winners =
        if !n_kept < k then 0
        else
          List.fold_left
            (fun acc e -> if beats_open ~open_card e then acc + 1 else acc)
            0 !kept
      in
      if winners >= k then skipped := 1 + List.length rest
      else begin
        let lb, ub = bounds_with ctx ops in
        kept := Explanation.make ~sa:sa_index ~lb ~ub ops :: !kept;
        incr n_kept;
        go rest
      end
  in
  go candidates;
  (List.rev !kept, !skipped)
