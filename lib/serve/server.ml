(* The why-not explanation service.

   One server value owns a catalog, two LRU caches, two single-flight
   tables, and a scheduler:

   - explanation cache: key ⟨dataset key, version, options, alternatives,
     query, pattern⟩ → serialized result payload.  A hit costs a hash
     lookup; cached and freshly computed payloads are byte-identical
     (the payload is stored serialized).
   - handle cache: the pattern-free prefix of the same key → prepared
     Pipeline.handle (enumerated SAs + executed ⟦Q⟧_D).  A new pattern
     on a cached handle skips straight to the per-SA phases.
   - single-flight (Inflight) in front of both: N concurrent misses on
     one key share one computation — the leader runs the pipeline, the
     followers get the leader's payload and answer with
     "cache": "coalesced".

   Cache keys are prefixed with the dataset key + version, so evicting a
   dataset invalidates its entries by prefix, and a version bump
   (refresh) makes old entries unreachable without scanning.

   Robustness model of the socket transports:
   - per-connection faults (EPIPE on a write to a hung-up client, bad
     bytes, anything a connection thread raises) kill that connection
     only; they are counted in Obs.Metrics, never the server;
   - accept faults (EINTR, ECONNABORTED) are retried;
   - connections beyond [max_connections] are answered with a one-line
     overloaded error and closed;
   - a [shutdown] request stops the whole server gracefully: the accept
     loop stops accepting, open connections are nudged (their read side
     is shut down, so keep-alive clients get EOF after the in-flight
     request), and the listener closes once every connection drained. *)

open Nested

(* Chaos sites of the serve layer, registered up front so the
   chaos-coverage lint can enumerate them. *)
let site_explain = Obs.Faultinject.register_site "server.explain"
let site_write = Obs.Faultinject.register_site "server.write"
let site_read = Obs.Faultinject.register_site "server.read"
let site_accept = Obs.Faultinject.register_site "server.accept"

type config = {
  cache_capacity : int;
  handle_capacity : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  parallel : bool;
  task_retries : int;
  timings : bool;
  max_connections : int;
  max_request_bytes : int;
  slow_ms : float option;
  slo_ms : float option;
}

let default_config =
  {
    cache_capacity = 128;
    handle_capacity = 32;
    queue_capacity = 64;
    default_deadline_ms = None;
    parallel = false;
    task_retries = 0;
    timings = true;
    max_connections = 64;
    max_request_bytes = 1 lsl 20;
    slow_ms = None;
    slo_ms = None;
  }

(* Socket-transport lifecycle: the stop flag, the set of open connection
   fds (so a stop can nudge blocked readers), and the drain condition. *)
type lifecycle = {
  lmutex : Mutex.t;
  drained : Condition.t;
  mutable stopping : bool;
  mutable active_conns : int;
  mutable conn_fds : Unix.file_descr list;
}

(* A query stored by [register_query], keyed by dataset key + lowercase
   name.  The compiled AST is what a later explain runs — so a named
   explain is byte-identical to one over the same AST registered
   programmatically. *)
type registered_query = {
  rq_query : Nrab.Query.t;
  rq_pattern : Whynot.Nip.t option;  (* default pattern for explains *)
  rq_info : Protocol.query_info;  (* listing metadata, frozen at register *)
}

type t = {
  cfg : config;
  catalog : Catalog.t;
  queries : (string, registered_query) Hashtbl.t;
  qmutex : Mutex.t;  (* guards [queries] *)
  explain_cache : Json.json Cache.t;
  handle_cache : Whynot.Pipeline.handle Cache.t;
  explain_flight :
    ( Json.json
      * [ `Hit | `Miss | `Handle ]
      * ((string * float) list * int) option,
      (* the leader's own per-phase durations (ms) and retry count, for
         slow-query attribution — [None] on cache hits *)
      Scheduler.error )
    result
    Inflight.t;
  handle_flight : (Whynot.Pipeline.handle * bool) Inflight.t;
  scheduler : Scheduler.t;
  lifecycle : lifecycle;
  mutex : Mutex.t;  (* guards the per-server request counters *)
  mutable requests : int;
  mutable explains : int;
  mutable prepares : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    catalog = Catalog.create ();
    queries = Hashtbl.create 16;
    qmutex = Mutex.create ();
    explain_cache = Cache.create ~name:"explain" ~capacity:config.cache_capacity;
    handle_cache = Cache.create ~name:"handles" ~capacity:config.handle_capacity;
    explain_flight = Inflight.create ~name:"explain" ();
    handle_flight = Inflight.create ~name:"handles" ();
    scheduler =
      Scheduler.create ~queue_capacity:config.queue_capacity
        ?default_deadline_ms:config.default_deadline_ms ();
    lifecycle =
      {
        lmutex = Mutex.create ();
        drained = Condition.create ();
        stopping = false;
        active_conns = 0;
        conn_fds = [];
      };
    mutex = Mutex.create ();
    requests = 0;
    explains = 0;
    prepares = 0;
  }

let config t = t.cfg

let bump t f =
  Mutex.lock t.mutex;
  f t;
  Mutex.unlock t.mutex

(* -- lifecycle ----------------------------------------------------------- *)

let stopping t =
  let l = t.lifecycle in
  Mutex.lock l.lmutex;
  let s = l.stopping in
  Mutex.unlock l.lmutex;
  s

(* Stop accepting and nudge every open connection: shutting the read
   side down makes a reader blocked on an idle keep-alive connection see
   EOF, so the drain can finish without waiting on client goodwill.
   In-flight requests still complete — only further reads are cut. *)
let request_stop t =
  let l = t.lifecycle in
  Mutex.lock l.lmutex;
  let fds = if l.stopping then [] else l.conn_fds in
  l.stopping <- true;
  Mutex.unlock l.lmutex;
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    fds

let register_conn t fd =
  let l = t.lifecycle in
  Mutex.lock l.lmutex;
  l.active_conns <- l.active_conns + 1;
  l.conn_fds <- fd :: l.conn_fds;
  Mutex.unlock l.lmutex

let forget_conn t fd =
  let l = t.lifecycle in
  Mutex.lock l.lmutex;
  l.active_conns <- l.active_conns - 1;
  l.conn_fds <- List.filter (fun fd' -> fd' <> fd) l.conn_fds;
  Condition.broadcast l.drained;
  Mutex.unlock l.lmutex

let active_connections t =
  let l = t.lifecycle in
  Mutex.lock l.lmutex;
  let n = l.active_conns in
  Mutex.unlock l.lmutex;
  n

(* -- keys ---------------------------------------------------------------- *)

let dataset_key (key : Catalog.key) =
  Fmt.str "%s@%d#%d" key.Catalog.name key.Catalog.scale key.Catalog.seed

let dataset_prefix key = dataset_key key ^ "/"

(* -- registered queries --------------------------------------------------- *)

let query_key (key : Catalog.key) name =
  dataset_prefix key ^ String.lowercase_ascii name

let find_query t key name =
  Mutex.lock t.qmutex;
  let rq = Hashtbl.find_opt t.queries (query_key key name) in
  Mutex.unlock t.qmutex;
  rq

let store_query t key name rq =
  let k = query_key key name in
  Mutex.lock t.qmutex;
  let replaced = Hashtbl.mem t.queries k in
  Hashtbl.replace t.queries k rq;
  Mutex.unlock t.qmutex;
  replaced

let registered_queries t =
  Mutex.lock t.qmutex;
  let n = Hashtbl.length t.queries in
  Mutex.unlock t.qmutex;
  n

(* Compile query text against a dataset's schema.  Diagnostics come
   back as the rendered [invalid_query] response. *)
let compile_query (entry : Catalog.entry) text :
    (Nrab.Query.t * Nested.Vtype.t, Protocol.response) result =
  let env = Catalog.schema_env entry in
  match Frontend.Compile.text ~env text with
  | Ok qt -> Ok qt
  | Error d -> Error (Protocol.invalid_query ~source:text d)

(* Parse a pattern and check it against the query's output type, so a
   structurally valid pattern that can never match is rejected at the
   door rather than yielding an empty explanation. *)
let compile_pattern text output_type :
    (Whynot.Nip.t, Protocol.response) result =
  match Whynot.Nip_syntax.parse text with
  | Error d -> Error (Protocol.invalid_query ~source:text d)
  | Ok nip -> (
    match output_type with
    | None -> Ok nip
    | Some ty -> (
      (* patterns describe one missing tuple, so check against the
         result's element type — exactly as Question.check_missing does *)
      match Whynot.Nip.check (Vtype.element ty) nip with
      | Ok () -> Ok nip
      | Error msg ->
        Error
          (Protocol.invalid_query ~source:text
             (Frontend.Diagnostic.make `Pattern
                (Fmt.str "pattern does not fit the query's output type: %s"
                   msg)))))

let fp_options (o : Protocol.explain_options) ~budget_ms : Fingerprint.options =
  {
    Fingerprint.use_sas = o.Protocol.use_sas;
    max_sas = o.Protocol.max_sas;
    revalidate = o.Protocol.revalidate;
    sample_stride = o.Protocol.sample_stride;
    top_k = o.Protocol.top_k;
    budget_ms;
  }

(* The prepared handle is approximation-independent (sampling and top-k
   happen in the per-SA phases, after prepare), so the handle key clears
   the approx knobs: every budget variant of a query shares one handle. *)
let handle_options (fpo : Fingerprint.options) : Fingerprint.options =
  { fpo with Fingerprint.sample_stride = None; top_k = None; budget_ms = None }

(* -- request handlers ---------------------------------------------------- *)

let handle_register t ~dataset ~scale ~seed ~refresh : Protocol.response =
  if refresh then begin
    (* version bump: entries for the old version are unreachable; drop
       them eagerly so they don't occupy LRU slots *)
    match Catalog.find t.catalog ~seed ~name:dataset ~scale () with
    | Some old ->
      let prefix = dataset_prefix old.Catalog.key in
      let matches k = String.starts_with ~prefix k in
      ignore (Cache.invalidate t.explain_cache matches);
      ignore (Cache.invalidate t.handle_cache matches)
    | None -> ()
  end;
  match Catalog.register t.catalog ~seed ~refresh ~name:dataset ~scale () with
  | Error msg -> Protocol.not_found msg
  | Ok (entry, fresh) ->
    Protocol.Registered
      {
        dataset = entry.Catalog.key.Catalog.name;
        scale = entry.Catalog.key.Catalog.scale;
        seed = entry.Catalog.key.Catalog.seed;
        version = entry.Catalog.version;
        fresh;
        rows = entry.Catalog.rows;
        tables = entry.Catalog.tables;
      }

(* The second component feeds the slow-query record: the leader's own
   per-phase durations and retry count when this request actually ran
   the pipeline, [None] for cache hits, coalesced followers, and
   errors. *)
let handle_explain t ~dataset ~scale ~seed ~query ~query_name ~pattern
    ~(options : Protocol.explain_options) ~deadline_ms ~budget_ms :
    Protocol.response * ((string * float) list * int) option =
  match Catalog.find t.catalog ~seed ~name:dataset ~scale () with
  | None ->
    ( Protocol.not_found
        (Fmt.str "dataset %S (scale %d, seed %d) is not registered — send a \
                  register request first" dataset scale seed),
      None )
  | Some entry -> (
    let inst = entry.Catalog.instance in
    let phi0 = inst.Scenarios.Scenario.question in
    (* Resolve the query: inline text (s-expression ASTs arrive parsed,
       SQL compiles here against the dataset's schema), a stored name,
       or the scenario's own question.  A stored query's default
       pattern applies when the request doesn't bring one. *)
    let resolved =
      match (query, query_name) with
      | Some _, Some _ ->
        Error
          (Protocol.bad_request
             "\"query\" and \"query_name\" are mutually exclusive")
      | Some (`Ast q), None -> Ok (q, None)
      | Some (`Sql text), None -> (
        match compile_query entry text with
        | Ok (q, _ty) -> Ok (q, None)
        | Error resp -> Error resp)
      | None, Some name -> (
        match find_query t entry.Catalog.key name with
        | Some rq -> Ok (rq.rq_query, rq.rq_pattern)
        | None ->
          Error
            (Protocol.not_found
               (Fmt.str "no query named %S is registered for dataset %s — \
                         send a register_query request first" name
                  (dataset_key entry.Catalog.key))))
      | None, None -> Ok (phi0.Whynot.Question.query, None)
    in
    match resolved with
    | Error resp -> (resp, None)
    | Ok (q, default_pattern) ->
    let missing =
      match (pattern, default_pattern) with
      | Some p, _ -> p
      | None, Some p -> p
      | None, None -> phi0.Whynot.Question.missing
    in
    let db = phi0.Whynot.Question.db in
    let alternatives = inst.Scenarios.Scenario.alternatives in
    let phi = Whynot.Question.make ~query:q ~db ~missing in
    (match Whynot.Question.check_missing phi with
    | Error msg ->
      (Protocol.bad_request ("invalid why-not question: " ^ msg), None)
    | Ok () ->
      let dskey = dataset_key entry.Catalog.key in
      let version = entry.Catalog.version in
      let fpo = fp_options options ~budget_ms in
      let prefix = dataset_prefix entry.Catalog.key in
      let ekey =
        prefix
        ^ Fingerprint.explain_key ~dataset:dskey ~version ~options:fpo
            ~alternatives q missing
      in
      bump t (fun t -> t.explains <- t.explains + 1);
      (match Cache.find t.explain_cache ekey with
      | Some payload ->
        ( Protocol.Explained
            { dataset = entry.Catalog.key.Catalog.name; version; cache = `Hit;
              result = payload },
          None )
      | None ->
        (* Single-flight: concurrent misses on this key share one
           computation.  The leader re-checks the cache (its miss may be
           stale by the time it wins leadership), then schedules the
           pipeline; followers just wait for the leader's outcome. *)
        (* The approximation budget starts burning now; Scheduler.submit
           re-anchors it at admission so queue wait counts against it. *)
        let approx_cfg =
          {
            Whynot.Approx.budget_ms;
            sample_stride = options.Protocol.sample_stride;
            top_k = options.Protocol.top_k;
          }
        in
        let budget =
          if Whynot.Approx.is_exact approx_cfg then None
          else Some (Whynot.Approx.start approx_cfg)
        in
        let job (cancel : Whynot.Cancel.t) =
          Obs.Faultinject.fire site_explain;
          let hkey =
            prefix
            ^ Fingerprint.prepare_key ~dataset:dskey ~version
                ~options:(handle_options fpo) ~alternatives q
          in
          let handle, reused_handle =
            match Cache.find t.handle_cache hkey with
            | Some h -> (h, true)
            | None -> (
              (* single-flight on the handle too: concurrent first
                 explains with distinct patterns over one query run
                 exactly one prepare *)
              let role, r =
                Inflight.run t.handle_flight hkey (fun () ->
                    match Cache.find t.handle_cache hkey with
                    | Some h -> (h, false)
                    | None ->
                      let h =
                        Whynot.Pipeline.prepare
                          ~use_sas:options.Protocol.use_sas
                          ~max_sas:options.Protocol.max_sas ~alternatives
                          ~cancel
                          ~retry:(Engine.Fault.retries t.cfg.task_retries)
                          ~db q
                      in
                      bump t (fun t -> t.prepares <- t.prepares + 1);
                      Cache.add t.handle_cache hkey h;
                      (h, true))
              in
              match (role, r) with
              | _, Error e -> raise e
              | Inflight.Follower _, Ok (h, _) -> (h, true)
              | Inflight.Leader, Ok (h, fresh) -> (h, not fresh))
          in
          let result =
            Whynot.Pipeline.explain_with ?approx:budget
              ~revalidate:options.Protocol.revalidate
              ~parallel:(options.Protocol.parallel || t.cfg.parallel)
              ~cancel
              ~retry:(Engine.Fault.retries t.cfg.task_retries)
              handle missing
          in
          let payload = Codec.result_to_json ~timings:t.cfg.timings result in
          Cache.add t.explain_cache ekey payload;
          (* Retries leave an [attempt] attribute (= total attempts) on
             the retried phase spans — summed here into the run's retry
             count for the slow-query disposition. *)
          let retries =
            Obs.Span.fold
              (fun acc sp ->
                match Obs.Span.attr sp "attempt" with
                | Some (Obs.Span.Int n) -> acc + (n - 1)
                | _ -> acc)
              0 result.Whynot.Pipeline.span
          in
          let phases = Whynot.Pipeline.phase_durations_ms result in
          ( payload,
            (if reused_handle then `Handle else `Miss),
            Some (phases, retries) )
        in
        let role, outcome =
          Inflight.run t.explain_flight ekey (fun () ->
              match Cache.find t.explain_cache ekey with
              | Some payload -> Ok (payload, `Hit, None)
              | None -> Scheduler.run t.scheduler ?deadline_ms ?budget job)
        in
        (* A coalesced request names whose execution it rode — the one
           cross-trace edge a per-trace grep cannot see on its own. *)
        (match role with
        | Inflight.Follower { leader_trace = Some leader } ->
          Obs.Log.info "serve.coalesced" (fun () ->
              [ Obs.Log.str "leader_trace" leader ])
        | Inflight.Follower { leader_trace = None } ->
          Obs.Log.info "serve.coalesced" (fun () -> [])
        | Inflight.Leader -> ());
        (match outcome with
        | Error e -> raise e
        | Ok (Ok (payload, source, run_info)) ->
          let cache, run_info =
            match role with
            | Inflight.Follower _ -> (`Coalesced, None)
            | Inflight.Leader ->
              ((source :> [ `Hit | `Miss | `Handle | `Coalesced ]), run_info)
          in
          ( Protocol.Explained
              { dataset = entry.Catalog.key.Catalog.name; version; cache;
                result = payload },
            run_info )
        | Ok (Error (Scheduler.Overloaded _ as e)) ->
          ( Protocol.Error
              {
                code = Protocol.Overloaded;
                message = Scheduler.error_to_string e;
                details = None;
              },
            None )
        | Ok (Error (Scheduler.Deadline_exceeded _ as e)) ->
          ( Protocol.Error
              {
                code = Protocol.Deadline_exceeded;
                message = Scheduler.error_to_string e;
                details = None;
              },
            None )
        | Ok (Error (Scheduler.Faulted _ as e)) ->
          ( Protocol.Error
              { code = Protocol.Task_failed;
                message = Scheduler.error_to_string e;
                details = None },
            None )))))

(* Compile-and-typecheck without running anything: the dry-run behind
   query development against a registered dataset. *)
let handle_parse t ~dataset ~scale ~seed ~query ~pattern : Protocol.response =
  match Catalog.find t.catalog ~seed ~name:dataset ~scale () with
  | None ->
    Protocol.not_found
      (Fmt.str "dataset %S (scale %d, seed %d) is not registered — send a \
                register request first" dataset scale seed)
  | Some entry -> (
    let compiled =
      match query with
      | None -> Ok None
      | Some text -> (
        match compile_query entry text with
        | Ok (q, ty) -> Ok (Some (q, ty))
        | Error resp -> Error resp)
    in
    match compiled with
    | Error resp -> resp
    | Ok compiled -> (
      let output_type = Option.map (fun (_, ty) -> ty) compiled in
      let checked_pattern =
        match pattern with
        | None -> Ok None
        | Some text -> (
          match compile_pattern text output_type with
          | Ok nip -> Ok (Some nip)
          | Error resp -> Error resp)
      in
      match checked_pattern with
      | Error resp -> resp
      | Ok nip ->
        let env = Catalog.schema_env entry in
        let sql =
          Option.map
            (fun (q, _) ->
              try Some (Frontend.Print.to_sql ~env q)
              with Frontend.Print.Unprintable _ -> None)
            compiled
          |> Option.join
        in
        Protocol.Parsed
          {
            dataset = entry.Catalog.key.Catalog.name;
            sql;
            sexp =
              Option.map (fun (q, _) -> Nrab.Parser.query_to_string q) compiled;
            fingerprint =
              Option.map
                (fun (q, _) -> Fingerprint.to_hex (Fingerprint.query q))
                compiled;
            output_type = Option.map Vtype.to_string output_type;
            pattern = Option.map Whynot.Nip_syntax.to_string nip;
          }))

let handle_register_query t ~name ~dataset ~scale ~seed ~query ~pattern :
    Protocol.response =
  match Catalog.find t.catalog ~seed ~name:dataset ~scale () with
  | None ->
    Protocol.not_found
      (Fmt.str "dataset %S (scale %d, seed %d) is not registered — send a \
                register request first" dataset scale seed)
  | Some entry -> (
    match compile_query entry query with
    | Error resp -> resp
    | Ok (q, ty) -> (
      let checked_pattern =
        match pattern with
        | None -> Ok None
        | Some text -> (
          match compile_pattern text (Some ty) with
          | Ok nip -> Ok (Some nip)
          | Error resp -> Error resp)
      in
      match checked_pattern with
      | Error resp -> resp
      | Ok nip ->
        let env = Catalog.schema_env entry in
        let sql =
          try Some (Frontend.Print.to_sql ~env q)
          with Frontend.Print.Unprintable _ -> None
        in
        let fingerprint = Fingerprint.to_hex (Fingerprint.query q) in
        let sexp = Nrab.Parser.query_to_string q in
        let replaced =
          store_query t entry.Catalog.key name
            {
              rq_query = q;
              rq_pattern = nip;
              rq_info =
                {
                  Protocol.q_name = name;
                  q_dataset = entry.Catalog.key.Catalog.name;
                  q_fingerprint = fingerprint;
                  q_sql = sql;
                  q_sexp = sexp;
                };
            }
        in
        Protocol.Query_registered
          {
            name;
            dataset = entry.Catalog.key.Catalog.name;
            fingerprint;
            sql;
            sexp;
            replaced;
          }))

(* Enumerate the stored queries — per dataset when a name is given
   (prefix match on the dataset key, so other instances of the same
   scenario at different scales/seeds stay invisible), otherwise all of
   them.  Sorted by ⟨dataset, name⟩ for deterministic transcripts. *)
let handle_list_queries t ~dataset ~scale ~seed : Protocol.response =
  let collect pred =
    Mutex.lock t.qmutex;
    let qs =
      Hashtbl.fold
        (fun k rq acc -> if pred k then rq.rq_info :: acc else acc)
        t.queries []
    in
    Mutex.unlock t.qmutex;
    List.sort
      (fun (a : Protocol.query_info) (b : Protocol.query_info) ->
        match compare a.Protocol.q_dataset b.Protocol.q_dataset with
        | 0 -> compare a.Protocol.q_name b.Protocol.q_name
        | c -> c)
      qs
  in
  match dataset with
  | None -> Protocol.Queries { dataset = None; queries = collect (fun _ -> true) }
  | Some name -> (
    match Catalog.find t.catalog ~seed ~name ~scale () with
    | None ->
      Protocol.not_found
        (Fmt.str "dataset %S (scale %d, seed %d) is not registered — send a \
                  register request first" name scale seed)
    | Some entry ->
      let prefix = dataset_prefix entry.Catalog.key in
      Protocol.Queries
        {
          dataset = Some entry.Catalog.key.Catalog.name;
          queries = collect (String.starts_with ~prefix);
        })

let cache_stats_json (s : Cache.stats) =
  Json.J_object
    [
      ("hits", Json.J_int s.Cache.hits);
      ("misses", Json.J_int s.Cache.misses);
      ("evictions", Json.J_int s.Cache.evictions);
      ("size", Json.J_int s.Cache.size);
      ("capacity", Json.J_int s.Cache.capacity);
    ]

let inflight_stats_json (s : Inflight.stats) =
  Json.J_object
    [
      ("leaders", Json.J_int s.Inflight.leaders);
      ("coalesced", Json.J_int s.Inflight.coalesced);
      ("failures", Json.J_int s.Inflight.failures);
    ]

let latency_summary_json (h : Obs.Metrics.Histogram.t) =
  let s = Obs.Metrics.Histogram.summary h in
  Json.J_object
    [
      ("count", Json.J_int s.Obs.Metrics.Histogram.count);
      ("p50", Json.J_float s.Obs.Metrics.Histogram.p50);
      ("p95", Json.J_float s.Obs.Metrics.Histogram.p95);
      ("max", Json.J_float s.Obs.Metrics.Histogram.max);
    ]

let handle_stats t : Protocol.response =
  let sched = Scheduler.stats t.scheduler in
  let requests, explains, prepares =
    Mutex.lock t.mutex;
    let r = (t.requests, t.explains, t.prepares) in
    Mutex.unlock t.mutex;
    r
  in
  Protocol.Stats_reply
    [
      ( "server",
        Json.J_object
          [
            ("requests", Json.J_int requests);
            ("explains", Json.J_int explains);
            ("prepares", Json.J_int prepares);
            ("queries", Json.J_int (registered_queries t));
            ("connections", Json.J_int (active_connections t));
            ("max_connections", Json.J_int t.cfg.max_connections);
          ] );
      ( "catalog",
        Json.J_object
          [
            ("datasets", Json.J_int (Catalog.size t.catalog));
            ( "entries",
              Json.J_array
                (List.map
                   (fun (e : Catalog.entry) ->
                     Json.J_object
                       [
                         ("dataset", Json.J_string e.Catalog.key.Catalog.name);
                         ("scale", Json.J_int e.Catalog.key.Catalog.scale);
                         ("seed", Json.J_int e.Catalog.key.Catalog.seed);
                         ("version", Json.J_int e.Catalog.version);
                         ("rows", Json.J_int e.Catalog.rows);
                       ])
                   (Catalog.entries t.catalog)) );
          ] );
      ("cache", cache_stats_json (Cache.stats t.explain_cache));
      ("handles", cache_stats_json (Cache.stats t.handle_cache));
      ("inflight", inflight_stats_json (Inflight.stats t.explain_flight));
      ( "inflight_handles",
        inflight_stats_json (Inflight.stats t.handle_flight) );
      ( "scheduler",
        Json.J_object
          [
            ("submitted", Json.J_int sched.Scheduler.submitted);
            ("rejected", Json.J_int sched.Scheduler.rejected);
            ("completed", Json.J_int sched.Scheduler.completed);
            ("expired", Json.J_int sched.Scheduler.expired);
            ("faulted", Json.J_int sched.Scheduler.faulted);
            ("depth", Json.J_int sched.Scheduler.depth);
            ("capacity", Json.J_int sched.Scheduler.capacity);
          ] );
      ( "latency",
        (* histogram summaries of queue wait and end-to-end explain
           latency (find-or-create: all-zero before the first explain) *)
        Json.J_object
          [
            ( "sched_wait_ms",
              latency_summary_json (Obs.Metrics.histogram "serve.sched.wait_ms")
            );
            ( "explain_ms",
              latency_summary_json
                (Obs.Metrics.histogram "serve.explain.latency_ms") );
          ] );
    ]

let handle_evict t ~dataset ~scale ~seed ~cache : Protocol.response =
  let datasets, dropped_for_dataset, dropped_queries =
    match dataset with
    | None -> (0, 0, 0)
    | Some name -> (
      match Catalog.find t.catalog ~seed ~name ~scale () with
      | None -> (0, 0, 0)
      | Some entry ->
        let prefix = dataset_prefix entry.Catalog.key in
        let matches k = String.starts_with ~prefix k in
        let dropped =
          Cache.invalidate t.explain_cache matches
          + Cache.invalidate t.handle_cache matches
        in
        (* Registered queries live under the same dataset prefix; drop
           them with the dataset, or a later re-register of the same
           name would silently answer explains with queries compiled
           against the evicted instance. *)
        Mutex.lock t.qmutex;
        let stale =
          Hashtbl.fold
            (fun k _ acc -> if matches k then k :: acc else acc)
            t.queries []
        in
        List.iter (Hashtbl.remove t.queries) stale;
        Mutex.unlock t.qmutex;
        let removed = Catalog.evict t.catalog ~seed ~name ~scale () in
        ((if removed then 1 else 0), dropped, List.length stale))
  in
  let dropped_for_cache =
    if cache then Cache.clear t.explain_cache + Cache.clear t.handle_cache
    else 0
  in
  Protocol.Evicted
    {
      datasets;
      cache_entries = dropped_for_dataset + dropped_for_cache;
      queries = dropped_queries;
    }

let handle_telemetry (format : [ `Prometheus | `Json ]) : Protocol.response =
  let metrics =
    match format with
    | `Prometheus -> Json.J_string (Obs.Export.prometheus ())
    | `Json -> Obs.Export.json ()
  in
  Protocol.Telemetry_reply { format; metrics }

let op_name = function
  | Protocol.Register _ -> "register"
  | Protocol.Explain _ -> "explain"
  | Protocol.Parse _ -> "parse"
  | Protocol.Register_query _ -> "register_query"
  | Protocol.List_queries _ -> "list_queries"
  | Protocol.Stats -> "stats"
  | Protocol.Telemetry _ -> "telemetry"
  | Protocol.Evict _ -> "evict"
  | Protocol.Shutdown -> "shutdown"

(* How the request was answered, for the response/slow-query records:
   the cache disposition of an explain, or the error code. *)
let disposition = function
  | Protocol.Explained { cache; _ } ->
    Some
      (match cache with
      | `Hit -> "hit"
      | `Miss -> "miss"
      | `Handle -> "handle"
      | `Coalesced -> "coalesced")
  | Protocol.Error { code; _ } -> Some (Protocol.error_code_to_string code)
  | _ -> None

let dispatch t (req : Protocol.request) :
    Protocol.response * ((string * float) list * int) option =
  bump t (fun t -> t.requests <- t.requests + 1);
  try
    match req with
    | Protocol.Register { dataset; scale; seed; refresh } ->
      (handle_register t ~dataset ~scale ~seed ~refresh, None)
    | Protocol.Explain
        {
          dataset;
          scale;
          seed;
          query;
          query_name;
          pattern;
          options;
          deadline_ms;
          budget_ms;
        } ->
      handle_explain t ~dataset ~scale ~seed ~query ~query_name ~pattern
        ~options ~deadline_ms ~budget_ms
    | Protocol.Parse { dataset; scale; seed; query; pattern } ->
      (handle_parse t ~dataset ~scale ~seed ~query ~pattern, None)
    | Protocol.Register_query { name; dataset; scale; seed; query; pattern } ->
      (handle_register_query t ~name ~dataset ~scale ~seed ~query ~pattern, None)
    | Protocol.List_queries { dataset; scale; seed } ->
      (handle_list_queries t ~dataset ~scale ~seed, None)
    | Protocol.Stats -> (handle_stats t, None)
    | Protocol.Telemetry { format } -> (handle_telemetry format, None)
    | Protocol.Evict { dataset; scale; seed; cache } ->
      (handle_evict t ~dataset ~scale ~seed ~cache, None)
    | Protocol.Shutdown -> (Protocol.Goodbye, None)
  with e ->
    ( Protocol.Error
        {
          code = Protocol.Internal;
          message = Printexc.to_string e;
          details = None;
        },
      None )

let slo_ok_c = lazy (Obs.Metrics.counter "serve.slo.ok")
let slo_breach_c = lazy (Obs.Metrics.counter "serve.slo.breach")

(* Dispatch plus the request's telemetry: admission/response records,
   the per-op latency histogram, SLO burn counters, and the slow-query
   record with per-phase attribution. *)
let observe_request t (req : Protocol.request) :
    Protocol.response * ((string * float) list * int) option =
  let op = op_name req in
  Obs.Log.info "serve.request" (fun () -> [ Obs.Log.str "op" op ]);
  let t0 = Obs.Clock.now_ns () in
  let resp, run_info = dispatch t req in
  let ms = Obs.Clock.ns_to_ms (Obs.Clock.now_ns () - t0) in
  Obs.Metrics.Histogram.observe
    (Obs.Metrics.histogram (Fmt.str "serve.%s.latency_ms" op))
    ms;
  let ok = match resp with Protocol.Error _ -> false | _ -> true in
  (* SLO burn accounting covers the ops that do pipeline work; an error
     (timeout, overload, fault) burns budget like a slow success *)
  (match t.cfg.slo_ms with
  | Some slo when op = "explain" ->
    Obs.Metrics.Counter.incr
      (Lazy.force (if ms <= slo && ok then slo_ok_c else slo_breach_c))
  | _ -> ());
  let base_fields () =
    [ Obs.Log.str "op" op; Obs.Log.float "ms" ms; Obs.Log.bool "ok" ok ]
    @ (match disposition resp with
      | Some d -> [ Obs.Log.str "disposition" d ]
      | None -> [])
  in
  (match t.cfg.slow_ms with
  | Some threshold when ms >= threshold ->
    Obs.Metrics.Counter.incr (Obs.Metrics.counter "serve.slow_queries");
    Obs.Log.warn "serve.slow" (fun () ->
        base_fields ()
        @ [ Obs.Log.float "threshold_ms" threshold ]
        @
        match run_info with
        | None -> []
        | Some (phases, retries) ->
          Obs.Log.int "retries" retries
          :: List.map
               (fun (p, pms) -> Obs.Log.float ("phase." ^ p ^ "_ms") pms)
               phases)
  | _ -> ());
  Obs.Log.info "serve.response" (fun () -> base_fields ());
  (resp, run_info)

let handle_request t (req : Protocol.request) : Protocol.response =
  fst (observe_request t req)

let handle_line t line : string * bool =
  match Protocol.envelope_of_string line with
  | Error msg ->
    Obs.Log.warn "serve.badreq" (fun () -> [ Obs.Log.str "error" msg ]);
    (Protocol.response_to_string (Protocol.bad_request msg), false)
  | Ok { Protocol.req; trace_id } ->
    (* The request's trace context: the client's id when it sent one
       (validated in the protocol layer), a generated one otherwise.
       Every span and log record below here carries it.  Only
       client-supplied ids are echoed on the response — generated ids
       are a log-side affair, so id-less transcripts stay
       deterministic. *)
    let id =
      match trace_id with Some id -> id | None -> Obs.Trace_context.make ()
    in
    Obs.Trace_context.with_id id (fun () ->
        let resp, _ = observe_request t req in
        ( Protocol.response_to_string ?trace_id resp,
          req = Protocol.Shutdown ))

(* -- serving loops ------------------------------------------------------- *)

let conn_faults = lazy (Obs.Metrics.counter "serve.conn.faults")
let conn_rejected = lazy (Obs.Metrics.counter "serve.conn.rejected")
let accept_retries = lazy (Obs.Metrics.counter "serve.accept.retries")

(* input_line with a size bound: a line longer than [max_bytes] is
   consumed (so the stream stays line-synchronized) but reported as
   [`Too_long] instead of being buffered whole. *)
let read_line_bounded ic max_bytes =
  let buf = Buffer.create 256 in
  let rec go overflow =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length buf = 0 && not overflow then `Eof
      else if overflow then `Too_long
      else `Line (Buffer.contents buf)
    | '\n' -> if overflow then `Too_long else `Line (Buffer.contents buf)
    | _ when Buffer.length buf >= max_bytes -> go true
    | c ->
      Buffer.add_char buf c;
      go false
  in
  go false

let serve_channels t ic oc =
  let respond line =
    Obs.Faultinject.fire site_write;
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if stopping t then ()
    else
      match read_line_bounded ic t.cfg.max_request_bytes with
      | `Eof -> ()
      | `Too_long ->
        respond
          (Protocol.response_to_string
             (Protocol.bad_request
                (Fmt.str "request exceeds the %d-byte limit"
                   t.cfg.max_request_bytes)));
        loop ()
      | `Line line ->
        let line = Obs.Faultinject.transform site_read line in
        if String.trim line = "" then loop ()
        else begin
          let resp, stop = handle_line t line in
          respond resp;
          if stop then request_stop t else loop ()
        end
  in
  loop ()

(* A connection thread must never kill the server: any escaping
   exception (EPIPE from a client hangup mid-write, bad bytes, a
   Sys_error from a vanished channel) is counted and swallowed; the
   connection is closed either way. *)
let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ | Unix.Unix_error _ -> ());
      forget_conn t fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try serve_channels t ic oc
      with e ->
        Obs.Metrics.Counter.incr (Lazy.force conn_faults);
        Logs.debug (fun m ->
            m "serve: connection fault: %s" (Printexc.to_string e)))

let reject_connection fd =
  Obs.Metrics.Counter.incr (Lazy.force conn_rejected);
  let line =
    Protocol.response_to_string
      (Protocol.Error
         {
           code = Protocol.Overloaded;
           message = "connection limit reached — retry later";
           details = None;
         })
  in
  (try
     ignore
       (Unix.write_substring fd (line ^ "\n") 0 (String.length line + 1) : int)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Accept until a shutdown request stops the server, then drain.  The
   listener is polled with a short timeout so the stop flag is observed
   without needing a final connection; transient accept faults (EINTR
   from a signal, ECONNABORTED from a client that gave up while queued)
   are retried, never fatal. *)
let accept_loop t sock =
  while not (stopping t) do
    match Unix.select [ sock ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      Obs.Metrics.Counter.incr (Lazy.force accept_retries)
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match
        Obs.Faultinject.fire site_accept;
        Unix.accept sock
      with
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        Obs.Metrics.Counter.incr (Lazy.force accept_retries)
      | fd, _addr ->
        if stopping t then
          try Unix.close fd with Unix.Unix_error _ -> ()
        else if active_connections t >= t.cfg.max_connections then
          reject_connection fd
        else begin
          register_conn t fd;
          ignore (Thread.create (fun () -> serve_connection t fd) ())
        end)
  done;
  (* drain: no new connections; wait for the open ones to finish their
     in-flight requests (request_stop already cut their read sides) *)
  let l = t.lifecycle in
  Mutex.lock l.lmutex;
  while l.active_conns > 0 do
    Condition.wait l.drained l.lmutex
  done;
  Mutex.unlock l.lmutex;
  (* every in-flight run has drained: this process's checkpoint/spill
     scratch directory has no remaining reader *)
  Engine.Checkpoint.sweep ();
  try Unix.close sock with Unix.Unix_error _ -> ()

let serve_unix t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  accept_loop t sock

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host ""
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | exception _ -> Error (Fmt.str "cannot resolve host %S" host)
    | infos -> (
      let inet =
        List.find_map
          (fun (ai : Unix.addr_info) ->
            match ai.Unix.ai_addr with
            | Unix.ADDR_INET (a, _) -> Some a
            | _ -> None)
          infos
      in
      match inet with
      | Some a -> Ok a
      | None ->
        Error
          (Fmt.str "host %S did not resolve to an IPv4 address — use a \
                    numeric address" host)))

let serve_tcp ?(host = "127.0.0.1") t ~port =
  let addr =
    match resolve_host host with
    | Ok a -> a
    | Error msg -> failwith ("serve_tcp: " ^ msg)
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 64;
  accept_loop t sock
