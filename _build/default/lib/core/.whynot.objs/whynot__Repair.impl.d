lib/core/repair.ml: Eval Explanation Fmt List Nested Nrab Opset Query Question Relation Reparam Ted Typecheck Value Vtype
