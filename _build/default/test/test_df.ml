(* The fluent DataFrame API must build the same plans as the explicit
   constructors and evaluate accordingly. *)

open Nested
open Nrab

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let addr c y = Value.Tuple [ ("city", Value.String c); ("year", Value.Int y) ]

let db =
  Relation.Db.of_list
    [
      ( "person",
        Relation.of_tuples ~schema:person_schema
          [
            Value.Tuple
              [
                ("name", Value.String "Sue");
                ("address2", Value.bag_of_list [ addr "LA" 2019; addr "NY" 2018 ]);
              ];
            Value.Tuple
              [ ("name", Value.String "Ann"); ("address2", Value.empty_bag) ];
          ] );
    ]

let running_example_df () =
  Df.table "person"
  |> Df.explode "address2"
  |> Df.filter (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
  |> Df.select_cols [ "name"; "city" ]
  |> Df.group_nest [ "name" ] ~into:"nList"

let test_running_example_pipeline () =
  let result = Df.collect db (running_example_df ()) in
  Alcotest.(check int) "one group" 1 (Relation.cardinal result);
  Alcotest.(check string) "the LA group"
    "⟨city: \"LA\", nList: {{⟨name: \"Sue\"⟩}}⟩"
    (Value.to_string (List.hd (Relation.tuples result)))

let test_same_plan_as_constructors () =
  let g = Query.Gen.create () in
  let explicit =
    Query.nest_rel g [ "name" ] ~into:"nList"
      (Query.project_attrs g [ "name"; "city" ]
         (Query.select g
            (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
            (Query.flatten_inner g "address2" (Query.table g "person"))))
  in
  Alcotest.(check string) "identical plans"
    (Query.to_string explicit)
    (Query.to_string (Df.plan (running_example_df ())))

let test_explode_outer_and_structs () =
  let df =
    Df.table "person"
    |> Df.explode_outer "address2"
    |> Df.pack_struct [ "city"; "year" ] ~into:"where"
  in
  let result = Df.collect db df in
  (* Ann survives the outer explode with a null-padded struct *)
  Alcotest.(check int) "three rows" 3 (Relation.cardinal result);
  let ann =
    List.find
      (fun t -> Value.field "name" t = Some (Value.String "Ann"))
      (Relation.tuples result)
  in
  Alcotest.(check bool) "padded struct" true
    (Value.field "where" ann
    = Some (Value.Tuple [ ("city", Value.Null); ("year", Value.Null) ]))

let test_group_by_and_join () =
  let counts =
    Df.table "person"
    |> Df.explode "address2"
    |> Df.group_by [ "name" ] [ (Agg.Count, None, "n") ]
  in
  let joined =
    Df.table "person"
    |> Df.rename_cols [ ("pname", "name") ]
    |> Df.join ~on:(Expr.Cmp (Expr.Eq, Expr.attr "pname", Expr.attr "name")) counts
    |> Df.select_cols [ "pname"; "n" ]
  in
  let result = Df.collect db joined in
  Alcotest.(check int) "only Sue has addresses" 1 (Relation.cardinal result);
  Alcotest.(check bool) "count is 2" true
    (Value.field "n" (List.hd (Relation.tuples result)) = Some (Value.Int 2))

let test_union_except_distinct () =
  let base = Df.table "person" |> Df.select_cols [ "name" ] in
  let doubled = base |> Df.union (Df.table "person" |> Df.select_cols [ "name" ]) in
  Alcotest.(check int) "union doubles" 4 (Relation.cardinal (Df.collect db doubled));
  Alcotest.(check int) "distinct collapses" 2
    (Relation.cardinal (Df.collect db (Df.distinct doubled)));
  let emptied = base |> Df.except base in
  Alcotest.(check int) "except empties" 0 (Relation.cardinal (Df.collect db emptied))

let test_with_columns () =
  let df =
    Df.table "person"
    |> Df.explode "address2"
    |> Df.with_columns
         [ ("name", Expr.attr "name"); ("next_year", Expr.(Add (attr "year", int 1))) ]
  in
  let result = Df.collect db df in
  Alcotest.(check bool) "computed column" true
    (List.exists
       (fun t -> Value.field "next_year" t = Some (Value.Int 2020))
       (Relation.tuples result))

let test_combined_frames_have_unique_ids () =
  let counts =
    Df.table "person"
    |> Df.explode "address2"
    |> Df.group_by [ "name" ] [ (Agg.Count, None, "n") ]
  in
  let joined =
    Df.table "person"
    |> Df.rename_cols [ ("pname", "name") ]
    |> Df.join ~on:(Expr.Cmp (Expr.Eq, Expr.attr "pname", Expr.attr "name")) counts
  in
  let ids =
    List.map (fun (op : Query.t) -> op.Query.id) (Query.operators (Df.plan joined))
  in
  Alcotest.(check int) "all operator ids unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_whynot_on_df_plan () =
  (* the fluent plan is an ordinary query: why-not works on it directly *)
  let query = Df.plan (running_example_df ()) in
  let missing =
    Whynot.Nip.tup [ ("city", Whynot.Nip.str "NY"); ("nList", Whynot.Nip.some_element) ]
  in
  let phi = Whynot.Question.make ~query ~db ~missing in
  let result = Whynot.Pipeline.explain ~use_sas:false phi in
  Alcotest.(check int) "one explanation (the filter)" 1
    (List.length result.Whynot.Pipeline.explanations)

let () =
  Alcotest.run "df"
    [
      ( "pipelines",
        [
          Alcotest.test_case "running example" `Quick test_running_example_pipeline;
          Alcotest.test_case "same plan as constructors" `Quick
            test_same_plan_as_constructors;
          Alcotest.test_case "explode_outer + structs" `Quick
            test_explode_outer_and_structs;
          Alcotest.test_case "group_by + join" `Quick test_group_by_and_join;
          Alcotest.test_case "union/except/distinct" `Quick test_union_except_distinct;
          Alcotest.test_case "with_columns" `Quick test_with_columns;
          Alcotest.test_case "unique ids after combine" `Quick
            test_combined_frames_have_unique_ids;
          Alcotest.test_case "why-not on a df plan" `Quick test_whynot_on_df_plan;
        ] );
    ]
