(* Synthetic TPC-H-like data, flat and nested (lineitems nested into
   orders, following the nested TPC-H variant of Pirzadeh et al. that the
   paper evaluates on).  Dates are encoded as yyyymmdd integers.

   The target entities of scenarios Q1–Q13 (the missing orders/customers)
   are embedded deterministically; everything else scales with [scale]. *)

open Nested

let str s = Value.String s
let int i = Value.Int i
let flt f = Value.Float f
let tup fields = Value.Tuple fields

let segments = [ "BUILDING"; "AUTOMOBILE"; "MACHINERY"; "HOUSEHOLD"; "FURNITURE" ]
let ship_priorities = [ "HIGH"; "LOW" ]
let order_priorities = [ "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" ]
let return_flags = [ ("N", 6); ("R", 3); ("A", 1) ]
let nations = [ (0, "FRANCE"); (1, "GERMANY"); (2, "JAPAN"); (3, "BRAZIL"); (4, "CANADA") ]

(* Target keys used by the scenario definitions. *)
let q3_target_orderkey = 4986467
let q3_target_custkey = 90001
let q10_target_custkey = 61402

let random_date g ~lo_year ~hi_year =
  (Prng.range g ~lo:lo_year ~hi:hi_year * 10000)
  + (Prng.range g ~lo:1 ~hi:12 * 100)
  + Prng.range g ~lo:1 ~hi:28

let lineitem_fields ~orderkey ~quantity ~price ~discount ~tax ~flag ~ship
    ~commit ~receipt =
  [
    ("l_orderkey", int orderkey);
    ("l_quantity", int quantity);
    ("l_extendedprice", flt price);
    ("l_discount", flt discount);
    ("l_tax", flt tax);
    ("l_returnflag", str flag);
    ("l_shipdate", int ship);
    ("l_commitdate", int commit);
    ("l_receiptdate", int receipt);
  ]

let lineitem_schema_fields =
  [
    ("l_orderkey", Vtype.TInt);
    ("l_quantity", Vtype.TInt);
    ("l_extendedprice", Vtype.TFloat);
    ("l_discount", Vtype.TFloat);
    ("l_tax", Vtype.TFloat);
    ("l_returnflag", Vtype.TString);
    ("l_shipdate", Vtype.TInt);
    ("l_commitdate", Vtype.TInt);
    ("l_receiptdate", Vtype.TInt);
  ]

let order_schema_fields =
  [
    ("o_orderkey", Vtype.TInt);
    ("o_custkey", Vtype.TInt);
    ("o_orderdate", Vtype.TInt);
    ("o_shippriority", Vtype.TString);
    ("o_orderpriority", Vtype.TString);
  ]

let nested_orders_schema =
  Vtype.relation
    (order_schema_fields
    @ [ ("o_lineitems", Vtype.relation lineitem_schema_fields) ])

let orders_schema = Vtype.relation order_schema_fields
let lineitem_schema = Vtype.relation lineitem_schema_fields

let customer_schema =
  Vtype.relation
    [
      ("c_custkey", Vtype.TInt);
      ("c_name", Vtype.TString);
      ("c_acctbal", Vtype.TFloat);
      ("c_phone", Vtype.TString);
      ("c_address", Vtype.TString);
      ("c_comment", Vtype.TString);
      ("c_mktsegment", Vtype.TString);
      ("c_nationkey", Vtype.TInt);
    ]

let nation_schema =
  Vtype.relation [ ("n_nationkey", Vtype.TInt); ("n_name", Vtype.TString) ]

let random_lineitem g ~orderkey =
  let ship = random_date g ~lo_year:1993 ~hi_year:1998 in
  (* commit and receipt dates scatter around the ship date so that all
     orderings of ship/commit/receipt occur (exercised by Q4) *)
  let commit = ship + Prng.range g ~lo:(-40) ~hi:40 in
  let receipt = ship + Prng.range g ~lo:(-10) ~hi:60 in
  lineitem_fields ~orderkey
    ~quantity:(Prng.range g ~lo:1 ~hi:50)
    ~price:(float_of_int (Prng.range g ~lo:900 ~hi:100000) /. 1.0)
    ~discount:(float_of_int (Prng.range g ~lo:2 ~hi:10) /. 100.)
    ~tax:(float_of_int (Prng.range g ~lo:0 ~hi:8) /. 100.)
    ~flag:(Prng.pick_weighted g return_flags)
    ~ship ~commit ~receipt

let customer g ~custkey ~segment ~nationkey =
  tup
    [
      ("c_custkey", int custkey);
      ("c_name", str (Fmt.str "Customer#%06d" custkey));
      ("c_acctbal", flt (float_of_int (Prng.range g ~lo:(-900) ~hi:9000)));
      ("c_phone", str (Fmt.str "27-%03d-%04d" (Prng.int g 1000) (Prng.int g 10000)));
      ("c_address", str (Fmt.str "%d Main St" (Prng.int g 900)));
      ("c_comment", str "regular deposits haggle");
      ("c_mktsegment", str segment);
      ("c_nationkey", int nationkey);
    ]

let db ?(seed = 1234) ~scale () : Relation.Db.t =
  let g = Prng.create ~seed in
  let n_customers = 20 * scale in
  let n_orders = 60 * scale in
  let order ~orderkey ~custkey ~orderdate ~shipprio ~orderprio ~lineitems =
    ( [
        ("o_orderkey", int orderkey);
        ("o_custkey", int custkey);
        ("o_orderdate", int orderdate);
        ("o_shippriority", str shipprio);
        ("o_orderpriority", str orderprio);
      ],
      lineitems )
  in
  let random_order ~orderkey =
    let custkey = 1 + Prng.int g n_customers in
    let n_items = Prng.range g ~lo:1 ~hi:5 in
    order ~orderkey ~custkey
      ~orderdate:(random_date g ~lo_year:1993 ~hi_year:1998)
      ~shipprio:(Prng.pick g ship_priorities)
      ~orderprio:(Prng.pick g order_priorities)
      ~lineitems:(List.init n_items (fun _ -> random_lineitem g ~orderkey))
  in
  let filler_orders = List.init n_orders (fun i -> random_order ~orderkey:(i + 1)) in
  (* Q3 target: a BUILDING-segment customer's order, placed before
     1995-03-15, whose lineitems commit between 03-15 and 03-25 (passing
     the intended filter, failing the mistyped one). *)
  let q3_order =
    order ~orderkey:q3_target_orderkey ~custkey:q3_target_custkey
      ~orderdate:19950310 ~shipprio:"HIGH" ~orderprio:"2-HIGH"
      ~lineitems:
        [
          lineitem_fields ~orderkey:q3_target_orderkey ~quantity:10
            ~price:25000. ~discount:0.05 ~tax:0.04 ~flag:"N" ~ship:19950410
            ~commit:19950320 ~receipt:19950420;
          lineitem_fields ~orderkey:q3_target_orderkey ~quantity:3
            ~price:9000. ~discount:0.04 ~tax:0.02 ~flag:"N" ~ship:19950412
            ~commit:19950318 ~receipt:19950430;
        ]
  in
  (* Q10 targets: customer 61402 returned items (flag R); one order inside
     the queried date window, one outside. *)
  let q10_orders =
    [
      order ~orderkey:7000001 ~custkey:q10_target_custkey ~orderdate:19971115
        ~shipprio:"LOW" ~orderprio:"3-MEDIUM"
        ~lineitems:
          [
            lineitem_fields ~orderkey:7000001 ~quantity:7 ~price:18000.
              ~discount:0.06 ~tax:0.03 ~flag:"R" ~ship:19971201
              ~commit:19971210 ~receipt:19971215;
          ];
      order ~orderkey:7000002 ~custkey:q10_target_custkey ~orderdate:19970801
        ~shipprio:"LOW" ~orderprio:"5-LOW"
        ~lineitems:
          [
            lineitem_fields ~orderkey:7000002 ~quantity:2 ~price:4000.
              ~discount:0.08 ~tax:0.01 ~flag:"R" ~ship:19970901
              ~commit:19970910 ~receipt:19970915;
          ];
    ]
  in
  (* Q10 support: some returned-"A" lineitems inside the queried window so
     the (wrong) return-flag filter is not globally empty. *)
  let q10_support =
    List.init 3 (fun i ->
        order ~orderkey:(7100000 + i) ~custkey:(1 + Prng.int g n_customers)
          ~orderdate:(19971001 + (i * 20))
          ~shipprio:(Prng.pick g ship_priorities)
          ~orderprio:(Prng.pick g order_priorities)
          ~lineitems:
            [
              lineitem_fields ~orderkey:(7100000 + i)
                ~quantity:(Prng.range g ~lo:1 ~hi:40)
                ~price:12000. ~discount:0.05 ~tax:0.04 ~flag:"A"
                ~ship:19971101 ~commit:19971110 ~receipt:19971120;
            ])
  in
  (* Q4 targets: 3-MEDIUM orders around the queried window with controlled
     ship/commit/receipt orderings. *)
  let q4_item ~orderkey ~ship ~commit ~receipt =
    lineitem_fields ~orderkey ~quantity:5 ~price:8000. ~discount:0.04
      ~tax:0.03 ~flag:"N" ~ship ~commit ~receipt
  in
  let q4_orders =
    [
      (* in window; ships before receipt — present under the erroneous
         filter already *)
      order ~orderkey:7200001 ~custkey:1 ~orderdate:19930715 ~shipprio:"HIGH"
        ~orderprio:"3-MEDIUM"
        ~lineitems:[ q4_item ~orderkey:7200001 ~ship:19930801 ~commit:19930810 ~receipt:19930820 ];
      (* in window; commits before receipt but ships late — only the
         intended (commit-date) filter admits it *)
      order ~orderkey:7200002 ~custkey:2 ~orderdate:19930801 ~shipprio:"LOW"
        ~orderprio:"3-MEDIUM"
        ~lineitems:[ q4_item ~orderkey:7200002 ~ship:19930901 ~commit:19930810 ~receipt:19930825 ];
      (* same lateness profile but outside the date window *)
      order ~orderkey:7200003 ~custkey:3 ~orderdate:19931201 ~shipprio:"LOW"
        ~orderprio:"3-MEDIUM"
        ~lineitems:[ q4_item ~orderkey:7200003 ~ship:19940101 ~commit:19931210 ~receipt:19931225 ];
    ]
  in
  let all_orders =
    q3_order :: (q10_orders @ q10_support @ q4_orders @ filler_orders)
  in
  let nested_orders =
    List.map
      (fun (ofields, lineitems) ->
        tup (ofields @ [ ("o_lineitems", Value.bag_of_list (List.map tup lineitems)) ]))
      all_orders
  in
  let flat_orders = List.map (fun (ofields, _) -> tup ofields) all_orders in
  let flat_lineitems =
    List.concat_map (fun (_, lineitems) -> List.map tup lineitems) all_orders
  in
  (* customers: regular ones, the two targets, and some without any order
     (needed by Q13) *)
  let fillers =
    List.init n_customers (fun i ->
        customer g ~custkey:(i + 1)
          ~segment:(Prng.pick g segments)
          ~nationkey:(fst (Prng.pick g nations)))
  in
  let no_order_customers =
    List.init (max 2 (2 * scale)) (fun i ->
        customer g ~custkey:(800000 + i)
          ~segment:(Prng.pick g segments)
          ~nationkey:(fst (Prng.pick g nations)))
  in
  let targets =
    [
      customer g ~custkey:q3_target_custkey ~segment:"BUILDING" ~nationkey:0;
      customer g ~custkey:q10_target_custkey ~segment:"AUTOMOBILE" ~nationkey:1;
    ]
  in
  let customers = targets @ no_order_customers @ fillers in
  let nation_tuples =
    List.map (fun (k, n) -> tup [ ("n_nationkey", int k); ("n_name", str n) ]) nations
  in
  (* customers with their orders nested — the deeper-nested schema used by
     the nested Q13 variant *)
  let nested_customers =
    List.map
      (fun c ->
        let custkey =
          match Value.field "c_custkey" c with
          | Some (Value.Int k) -> k
          | _ -> assert false
        in
        let my_orders =
          List.filter
            (fun o -> Value.field "o_custkey" o = Some (int custkey))
            flat_orders
        in
        Value.concat_tuples c
          (tup [ ("c_orders", Value.bag_of_list my_orders) ]))
      customers
  in
  let nested_customers_schema =
    Vtype.relation
      (Vtype.relation_fields customer_schema
      @ [ ("c_orders", Vtype.relation order_schema_fields) ])
  in
  Relation.Db.of_list
    [
      ("nested_orders", Relation.of_tuples ~schema:nested_orders_schema nested_orders);
      ("orders", Relation.of_tuples ~schema:orders_schema flat_orders);
      ("lineitem", Relation.of_tuples ~schema:lineitem_schema flat_lineitems);
      ("customer", Relation.of_tuples ~schema:customer_schema customers);
      ( "nested_customers",
        Relation.of_tuples ~schema:nested_customers_schema nested_customers );
      ("nation", Relation.of_tuples ~schema:nation_schema nation_tuples);
    ]
