lib/core/msr.mli: Explanation Hashtbl Nested Nrab Opset Tracing Value
