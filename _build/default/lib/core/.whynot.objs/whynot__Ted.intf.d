lib/core/ted.mli: Nested Tree Value
