(** Request scheduler — bounded admission in front of the shared
    {!Engine.Pool}.

    Admission is a counted slot: at most [queue_capacity] requests may be
    queued-or-running at once; a submission past that is rejected
    immediately with {!Overloaded} (backpressure — the caller gets a
    typed error to serialize, not a blocked connection).  Deadlines are
    cooperative: a request still queued when its deadline passes is not
    started and resolves to {!Deadline_exceeded}; a request that already
    started runs to completion (the pipeline has no preemption points).

    Counters [serve.sched.{submitted,rejected,completed,expired}], the
    [serve.sched.depth] gauge, and the [serve.sched.wait_ms] histogram
    land in {!Obs.Metrics}. *)

type error =
  | Overloaded of { depth : int; capacity : int }
  | Deadline_exceeded of { waited_ms : float; deadline_ms : float }

val error_to_string : error -> string

type t

(** [create ?pool ~queue_capacity ?default_deadline_ms ()] — capacity is
    clamped to ≥ 1; [default_deadline_ms] applies to submissions without
    an explicit deadline ([None] = no deadline).  [pool] defaults to the
    process-wide {!Engine.Pool.default}. *)
val create :
  ?pool:Engine.Pool.t ->
  queue_capacity:int ->
  ?default_deadline_ms:float ->
  unit ->
  t

type 'a ticket

(** Admit a job or reject it with {!Overloaded}. *)
val submit : t -> ?deadline_ms:float -> (unit -> 'a) -> ('a ticket, error) result

(** Wait for the outcome (helping with pool work — see
    {!Engine.Pool.await}).  Re-raises the job's own exception if it
    raised. *)
val await : 'a ticket -> ('a, error) result

(** [submit] + [await]. *)
val run : t -> ?deadline_ms:float -> (unit -> 'a) -> ('a, error) result

(** Requests currently queued or running. *)
val depth : t -> int

val queue_capacity : t -> int

(** Per-scheduler counts (the global {!Obs.Metrics} counters aggregate
    across schedulers; these don't). *)
type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  expired : int;
  depth : int;
  capacity : int;
}

val stats : t -> stats
