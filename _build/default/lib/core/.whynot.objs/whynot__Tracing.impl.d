lib/core/tracing.ml: Agg Alternatives Backtrace Engine Expr Hashtbl List Nested Nip Nrab Opset Option Query Relation Seq String Typecheck Value Vtype
