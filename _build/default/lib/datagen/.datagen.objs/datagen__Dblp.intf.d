lib/datagen/dblp.mli: Nested Relation Vtype
