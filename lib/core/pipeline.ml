(* Algorithm 1: the four-step heuristic why-not pipeline.

     1. schema backtracing          (Backtrace)
     2. schema alternatives         (Alternatives)
     3. data tracing                (Tracing)
     4. approximate MSRs            (Msr)

   [explain ~use_sas:false] is the paper's RPnoSA configuration (only the
   original schema alternative); [explain] with alternatives is RP. *)

open Nested
open Nrab

type result = {
  question : Question.t;
  sas : Alternatives.sa list;
  explanations : Explanation.t list;
  span : Obs.Span.t;
}

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

let phases = [ "backtrace"; "alternatives"; "tracing"; "msr" ]

let phase_durations_ms_of_span span =
  List.map (fun p -> (p, Obs.Span.sum_duration_ms_named p span)) phases

(* A tiled phase runner over an explicit cursor: each phase span starts
   at the previous one's end, so span bookkeeping (and GC pauses hitting
   it) is charged to a phase rather than falling into gaps.  The
   sequential pipeline threads one cursor through everything; the
   parallel pipeline gives each schema alternative its own. *)
let phase_at cursor parent name f =
  let sp = Obs.Span.start ~parent ~at:!cursor name in
  Fun.protect
    ~finally:(fun () ->
      cursor := Obs.Clock.now_ns ();
      Obs.Span.finish ~at:!cursor sp)
    (fun () -> f sp)

let explain ?(use_sas = true) ?(max_sas = 16) ?(revalidate = true)
    ?(alternatives : Alternatives.alternatives = []) ?(parallel = false)
    ?parent (phi : Question.t) : result =
  let root = Obs.Span.start ?parent "pipeline.explain" in
  (* Phase spans are tiled wall-to-wall — the four phase totals account
     for ≈ all of the root span (in the sequential pipeline; concurrent
     SA phases overlap, so there the sums can exceed the total). *)
  let cursor = ref (Obs.Span.start_ns root) in
  let phase parent name f = phase_at cursor parent name f in
  let q = phi.Question.query in
  (* step 2 (schema alternatives); step 1 (backtracing) runs per SA since
     the NIPs depend on the substituted attributes *)
  let env, sas =
    phase root "alternatives" (fun sp ->
        let env = schema_env phi.Question.db in
        let sas =
          if use_sas then Alternatives.enumerate ~max_sas ~env q alternatives
          else
            [
              {
                Alternatives.index = 0;
                query = q;
                changed_ops = Msr.Int_set.empty;
                description = "original";
              };
            ]
        in
        Obs.Span.set_int sp "sas" (List.length sas);
        (env, sas))
  in
  (* ⟦Q⟧_D, the basis of the side-effect bounds, is charged to the MSR
     phase. *)
  let bi =
    phase root "msr" (fun sp ->
        let original_result = Relation.tuples (Question.original_result phi) in
        Obs.Span.set_int sp "original_result_rows"
          (List.length original_result);
        { Msr.original_result })
  in
  (* One SA's backtrace→tracing→MSR chain; independent across SAs. *)
  let process_sa cursor (sa : Alternatives.sa) sasp =
    let bt =
      phase_at cursor sasp "backtrace" (fun _ ->
          Backtrace.run ~env sa.Alternatives.query phi.Question.missing)
    in
    (* steps 3 and 4 *)
    let trace =
      phase_at cursor sasp "tracing" (fun _ ->
          Tracing.run ~revalidate ~env phi.Question.db sa bt)
    in
    phase_at cursor sasp "msr" (fun msp ->
        let es = Msr.from_trace ~bi ~q trace in
        Obs.Span.set_int msp "candidates" (List.length es);
        es)
  in
  let sa_name (sa : Alternatives.sa) =
    Fmt.str "sa:S%d" (sa.Alternatives.index + 1)
  in
  let explanations =
    if parallel && List.length sas > 1 then begin
      (* Fan the SAs out over the shared domain pool.  The sa:S<i> spans
         are started here on the calling domain (so their order under the
         root is deterministic); each job tiles its three child phases
         with a cursor of its own.  Results are awaited in SA order, so
         the concatenated candidate list — and hence the final ranking —
         is identical to the sequential pipeline's. *)
      Obs.Span.set_bool root "parallel_sas" true;
      let pool = Engine.Pool.default () in
      let futures =
        List.map
          (fun (sa : Alternatives.sa) ->
            let sasp = Obs.Span.start ~parent:root (sa_name sa) in
            Engine.Pool.submit pool (fun () ->
                Fun.protect
                  ~finally:(fun () -> Obs.Span.finish sasp)
                  (fun () ->
                    let sa_cursor = ref (Obs.Clock.now_ns ()) in
                    process_sa sa_cursor sa sasp)))
          sas
      in
      List.concat_map Engine.Pool.await futures
    end
    else
      List.concat_map
        (fun (sa : Alternatives.sa) ->
          phase root (sa_name sa) (fun sasp -> process_sa cursor sa sasp))
        sas
  in
  let explanations =
    phase root "msr" (fun _ ->
        Explanation.rank (Explanation.prune_dominated explanations))
  in
  Obs.Span.set_int root "sas" (List.length sas);
  Obs.Span.set_int root "explanations" (List.length explanations);
  Obs.Span.finish root;
  List.iter
    (fun (p, ms) ->
      Obs.Metrics.Histogram.observe
        (Obs.Metrics.histogram ("pipeline.phase." ^ p ^ "_ms"))
        ms)
    (phase_durations_ms_of_span root);
  Obs.Metrics.Counter.incr (Obs.Metrics.counter "pipeline.explains");
  Obs.Metrics.Counter.incr ~by:(List.length sas)
    (Obs.Metrics.counter "pipeline.sas");
  Obs.Metrics.Counter.incr
    ~by:(List.length explanations)
    (Obs.Metrics.counter "pipeline.explanations");
  { question = phi; sas; explanations; span = root }

(* Total time per algorithm phase (summed across schema alternatives). *)
let phase_durations_ms (r : result) = phase_durations_ms_of_span r.span

(* Convenience: explanation op-id sets in rank order. *)
let explanation_sets (r : result) : int list list =
  List.map Explanation.op_list r.explanations

let pp_result ppf (r : result) =
  let q = r.question.Question.query in
  Fmt.pf ppf "@[<v>%d schema alternative(s):@,%a@,explanations:@,%a@]"
    (List.length r.sas)
    (Fmt.list ~sep:Fmt.cut (fun ppf (sa : Alternatives.sa) ->
         Fmt.pf ppf "  S%d: %s" (sa.Alternatives.index + 1)
           sa.Alternatives.description))
    r.sas
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %a" (Explanation.pp_with_query q) e))
    r.explanations
