lib/baselines/wnpp.mli: Explanation_set Whynot
