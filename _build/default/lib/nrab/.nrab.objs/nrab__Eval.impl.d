lib/nrab/eval.ml: Agg Expr Fmt Hashtbl List Nested Query Relation String Typecheck Value Vtype
