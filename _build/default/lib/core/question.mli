(** Why-not questions (Definition 5): Φ = ⟨Q, D, t⟩ — a query, a
    database, and a NIP [t] over the query's output schema describing the
    missing answer(s). *)

open Nested
open Nrab

type t = { query : Query.t; db : Relation.Db.t; missing : Nip.t }

val make : query:Query.t -> db:Relation.Db.t -> missing:Nip.t -> t

(** Does the NIP conform to the query's output schema (Definition 5
    requires a NIP of the output's tuple type)? *)
val check_missing : t -> (unit, string) result

(** A question is proper iff no tuple of ⟦Q⟧_D matches the NIP — the
    answer really is missing (required by Definition 5). *)
val is_proper : t -> bool

(** ⟦Q⟧_D. *)
val original_result : t -> Relation.t

(** Result tuples of a candidate reparameterization [q] that match the
    missing-answer NIP. *)
val matching_tuples : t -> Query.t -> Value.t list

(** Is [q] a successful reparameterization result-wise (Definition 8)? *)
val is_successful : t -> Query.t -> bool

val pp : Format.formatter -> t -> unit
