(* Nested relational types (Definition 1 of the paper).

   A nested relation schema is a bag type whose element type is a tuple
   type.  [⊥] (Null) inhabits every type. *)

type t =
  | TBool
  | TInt
  | TFloat
  | TString
  | TTuple of (string * t) list
  | TBag of t

let rec compare (a : t) (b : t) : int =
  match a, b with
  | TBool, TBool | TInt, TInt | TFloat, TFloat | TString, TString -> 0
  | TBool, _ -> -1
  | _, TBool -> 1
  | TInt, _ -> -1
  | _, TInt -> 1
  | TFloat, _ -> -1
  | _, TFloat -> 1
  | TString, _ -> -1
  | _, TString -> 1
  | TTuple xs, TTuple ys ->
    let cmp (la, ta) (lb, tb) =
      let c = String.compare la lb in
      if c <> 0 then c else compare ta tb
    in
    List.compare cmp xs ys
  | TTuple _, _ -> -1
  | _, TTuple _ -> 1
  | TBag x, TBag y -> compare x y

let equal a b = compare a b = 0

let is_primitive = function
  | TBool | TInt | TFloat | TString -> true
  | TTuple _ | TBag _ -> false

(* A relation schema: bag of tuples. *)
let relation fields = TBag (TTuple fields)

let tuple_fields = function
  | TTuple fields -> fields
  | TBool | TInt | TFloat | TString | TBag _ ->
    invalid_arg "Vtype.tuple_fields: not a tuple type"

(* Element type of a relation schema. *)
let element = function
  | TBag ty -> ty
  | TBool | TInt | TFloat | TString | TTuple _ ->
    invalid_arg "Vtype.element: not a bag type"

(* Fields of the tuples in a relation schema. *)
let relation_fields ty = tuple_fields (element ty)

let field (label : string) (ty : t) : t option =
  match ty with
  | TTuple fields -> List.assoc_opt label fields
  | TBool | TInt | TFloat | TString | TBag _ -> None

let labels = function
  | TTuple fields -> List.map fst fields
  | TBool | TInt | TFloat | TString | TBag _ -> []

(* Concatenation of tuple types (the paper's ∘ on types). *)
let concat_tuples a b =
  match a, b with
  | TTuple xs, TTuple ys -> TTuple (xs @ ys)
  | _ -> invalid_arg "Vtype.concat_tuples: arguments must be tuple types"

(* Does value [v] inhabit type [ty]?  Null inhabits every type. *)
let rec has_type (v : Value.t) (ty : t) : bool =
  match v, ty with
  | Value.Null, _ -> true
  | Value.Bool _, TBool -> true
  | Value.Int _, TInt -> true
  | Value.Float _, TFloat -> true
  | Value.String _, TString -> true
  | Value.Tuple fields, TTuple tys ->
    List.length fields = List.length tys
    && List.for_all2
         (fun (l, fv) (l', fty) -> String.equal l l' && has_type fv fty)
         fields tys
  | Value.Bag es, TBag ety -> List.for_all (fun (e, _) -> has_type e ety) es
  | (Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _
    | Value.Tuple _ | Value.Bag _), _ ->
    false

(* Infer the most specific type of a value; [None] when parts of the type
   are unconstrained (Null subvalues) or the value is heterogeneous.
   Internally uses partial types so that a bag of nulls unifies only with
   other bags. *)

type partial =
  | P_unknown
  | P_known of t
  | P_tuple of (string * partial) list
  | P_bag of partial

exception Not_unifiable

let rec unify_partial (a : partial) (b : partial) : partial =
  match a, b with
  | P_unknown, x | x, P_unknown -> x
  | P_known x, P_known y -> if equal x y then a else raise Not_unifiable
  | P_tuple xs, P_tuple ys when List.length xs = List.length ys ->
    P_tuple
      (List.map2
         (fun (l, tx) (l', ty) ->
           if String.equal l l' then (l, unify_partial tx ty)
           else raise Not_unifiable)
         xs ys)
  | P_bag x, P_bag y -> P_bag (unify_partial x y)
  | _ -> raise Not_unifiable

let rec infer_partial (v : Value.t) : partial =
  match v with
  | Value.Null -> P_unknown
  | Value.Bool _ -> P_known TBool
  | Value.Int _ -> P_known TInt
  | Value.Float _ -> P_known TFloat
  | Value.String _ -> P_known TString
  | Value.Tuple fields ->
    P_tuple (List.map (fun (l, fv) -> (l, infer_partial fv)) fields)
  | Value.Bag es ->
    P_bag
      (List.fold_left
         (fun acc (e, _) -> unify_partial acc (infer_partial e))
         P_unknown es)

let rec complete (p : partial) : t option =
  match p with
  | P_unknown -> None
  | P_known ty -> Some ty
  | P_tuple fields ->
    let cs = List.map (fun (l, fp) -> Option.map (fun t -> (l, t)) (complete fp)) fields in
    if List.for_all Option.is_some cs then Some (TTuple (List.map Option.get cs))
    else None
  | P_bag p -> Option.map (fun t -> TBag t) (complete p)

let infer (v : Value.t) : t option =
  match infer_partial v with
  | p -> complete p
  | exception Not_unifiable -> None

(* The Null-padded tuple ⟨A₁:⊥, …, Aₙ:⊥⟩ for a tuple type. *)
let null_tuple (ty : t) : Value.t =
  match ty with
  | TTuple fields -> Value.Tuple (List.map (fun (l, _) -> (l, Value.Null)) fields)
  | TBool | TInt | TFloat | TString | TBag _ ->
    invalid_arg "Vtype.null_tuple: not a tuple type"

let rec pp ppf (ty : t) =
  match ty with
  | TBool -> Fmt.string ppf "BOOL"
  | TInt -> Fmt.string ppf "INT"
  | TFloat -> Fmt.string ppf "FLOAT"
  | TString -> Fmt.string ppf "STR"
  | TTuple fields ->
    Fmt.pf ppf "⟨%a⟩"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (l, t) ->
           Fmt.pf ppf "%s: %a" l pp t))
      fields
  | TBag ty -> Fmt.pf ppf "{{%a}}" pp ty

let to_string ty = Fmt.str "%a" pp ty
