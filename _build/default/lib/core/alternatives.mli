(** Schema alternatives (Section 5.2).

    Attribute alternatives are input (from the user, schema matching, or
    schema-free query processors, as in the paper): per table, groups of
    mutually interchangeable attribute paths.  Enumeration mirrors
    Figure 3: every operator reference whose *source attribute* (computed
    by a schema-level forward provenance pass) belongs to a group is a
    choice point; the cartesian product of choices is pruned of
    assignments that cannot be realized at the operator's input, yield an
    ill-typed query, or change the output schema. *)

open Nested
open Nrab

module Int_set = Opset.Int_set

(** Each entry (table, group) is one group of interchangeable attribute
    paths of that table. *)
type alternatives = (string * Path.t list) list

type sa = {
  index : int;  (** 0 is the original schema alternative S₁ *)
  query : Query.t;  (** the query with attribute substitutions applied *)
  changed_ops : Int_set.t;
      (** the SR prefix: operators whose parameters the SA changes *)
  description : string;
}

(** Source attribute (table × path) of each output attribute of a query
    that is a direct copy of input data. *)
val origins : env:Typecheck.env -> Query.t -> (string * (string * Path.t)) list

(** Attributes referenced in an operator's parameters. *)
val referenced_attrs : Query.node -> string list

type choice_point = {
  cp_op : int;
  cp_attr : string;  (** the attribute name referenced at that operator *)
  cp_table : string;
  cp_options : Path.t list;  (** the group; head = the original *)
}

val choice_points : env:Typecheck.env -> Query.t -> alternatives -> choice_point list

(** Substitute attribute references of one node (exposed for tests). *)
val subst_node : Query.node -> (string -> string) -> Query.node

(** Enumerate schema alternatives, pruned and deduplicated; the original
    assignment comes first as index 0.  [max_sas] truncates
    deterministically. *)
val enumerate :
  ?max_sas:int -> env:Typecheck.env -> Query.t -> alternatives -> sa list
