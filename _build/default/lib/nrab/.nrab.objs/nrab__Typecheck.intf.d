lib/nrab/typecheck.mli: Expr Nested Query Vtype
