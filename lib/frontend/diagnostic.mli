(** Source-anchored diagnostics for the text frontend.

    Every error the frontend can produce — lexical, syntactic, type, or
    why-not-pattern — carries a byte-offset span into the original
    source text and renders as a caret-underlined snippet, so a client
    that only sees the wire response can still point at the offending
    characters. *)

(** A position in the source text.  [line] and [col] are 1-based;
    [offset] is the 0-based byte offset. *)
type pos = { offset : int; line : int; col : int }

(** Half-open byte range [left, right) into the source. *)
type span = { left : int; right : int }

type stage = [ `Lex | `Parse | `Type | `Pattern ]

type t = {
  stage : stage;
  span : span option;  (** [None] when no source anchor is known *)
  message : string;
  hint : string option;
}

val make : ?span:span -> ?hint:string -> stage -> string -> t
val makef : ?span:span -> ?hint:string -> stage -> ('a, Format.formatter, unit, t) format4 -> 'a

val stage_to_string : stage -> string

(** Resolve a byte offset against the source text (1-based line/col).
    Offsets past the end clamp to the final position. *)
val pos_of_offset : string -> int -> pos

(** One-line rendering: ["parse error at 3:14: expected FROM"]. *)
val one_line : source:string -> t -> string

(** Multi-line rendering with the offending source line and a caret
    underline:

    {v
    parse error at 1:13: expected FROM, found identifier "city"
      1 | SELECT name city FROM person
        |             ^^^^
      hint: separate select items with commas
    v} *)
val render : source:string -> t -> string

(** Wire form: [{"stage", "message", "line", "col", "end_line",
    "end_col", "snippet", "hint"}] — positions and snippet only when a
    span is present, hint only when set. *)
val to_json : source:string -> t -> Nested.Json.json
