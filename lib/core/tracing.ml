(* Data tracing (Section 5.3).

   For one schema alternative, evaluate the (attribute-substituted) query
   with *relaxed* operators — selections pass everything, inner flattens
   and joins are generalized to their outer variants — and annotate every
   intermediate tuple with:

   - [consistent]: the tuple matches the backtraced NIP at this operator
     (the re-validation that distinguishes this algorithm from prior
     lineage-based work);
   - [retained]:  the operator, with its (SA-substituted) original
     parameters, produces/keeps this tuple — false marks tuples that only a
     reparameterization of this operator lets through;
   - [surviving]: the tuple appears in the unrelaxed intermediate result
     (cumulative across upstream operators) — identifies the original
     query's data inside the trace;
   - [parents]:   the immediate-predecessor rows (lineage).

   The per-SA relations here correspond to the per-SA column groups of the
   merged annotated tables in Figures 4–7.  The annotations themselves are
   stored columnar ({!vann}: flat flag vectors plus an offset-encoded
   parent adjacency), with per-row {!trow} trees reconstructed lazily —
   the relaxed evaluation runs over {!Engine.Columnar} batches unless the
   row engine is active, in which case the original row-at-a-time
   evaluation produces the same vectors from its row lists.

   Aggregate constraints of the why-not question (e.g. revenue > 0) are
   checked *optimistically* via achievable ranges over sub-multisets of
   contributions, since the algorithm does not trace aggregate subsets
   (Section 5.5, corner (iii)). *)

open Nested
open Nrab
module Int_set = Opset.Int_set
module C = Engine.Columnar

type trow = {
  rid : int;
  data : Value.t;
  consistent : bool;
  retained : bool;   (* this operator's original parameters keep this row *)
  surviving : bool;  (* row appears in the unrelaxed intermediate result *)
  parents : int list;
  ranges : (string * (float * float)) list;
      (* achievable intervals for aggregate-output fields *)
}

(* Parent adjacency, offset-encoded instead of one list per row. *)
type parents =
  | P_none  (* source rows *)
  | P_self of int  (* row [i]'s single parent is [base + i] *)
  | P_one of int array  (* one parent per row *)
  | P_many of int array * int array  (* offsets[n+1] into flat rid array *)

type vann = {
  v_n : int;
  v_rid0 : int;  (* rows of this operator are rids [v_rid0, v_rid0+v_n) *)
  v_consistent : Bytes.t;
  v_retained : Bytes.t;
  v_surviving : Bytes.t;
  v_parents : parents;
  v_ranges : (string * (float * float)) list array option;
      (* [None] = no row has ranges *)
}

type op_trace = {
  op_id : int;
  op_node : Query.node;
  nip : Nip.t;
  ann : vann;
  rows : trow list Lazy.t;  (* per-row trees, reconstructed on demand *)
  data_at : int -> Value.t;
      (* single-row tree, without forcing the whole batch *)
}

type t = {
  sa : Alternatives.sa;
  ops : op_trace list;  (* topological order: children before parents *)
  root_op : int;
}

(* --- Flag vectors ------------------------------------------------------ *)

let bget b i = Bytes.unsafe_get b i = '\001'
let bset b i v = Bytes.unsafe_set b i (if v then '\001' else '\000')
let chr v : char = if v then '\001' else '\000'
let ball n v = Bytes.make n (chr v)
let bytes_of_bitv n bv = Bytes.init n (fun i -> chr (C.Bitv.get bv i))

let band a b =
  Bytes.init (Bytes.length a) (fun i -> chr (bget a i && bget b i))

let parents_list (p : parents) (i : int) : int list =
  match p with
  | P_none -> []
  | P_self base -> [ base + i ]
  | P_one a -> [ a.(i) ]
  | P_many (off, flat) ->
    List.init (off.(i + 1) - off.(i)) (fun j -> flat.(off.(i) + j))

let rng_at (r : (string * (float * float)) list array option) i =
  match r with None -> [] | Some a -> a.(i)

(* Drop an all-empty ranges array (the common case downstream tests). *)
let norm_rng (arr : (string * (float * float)) list array) =
  if Array.for_all (fun l -> l = []) arr then None else Some arr

(* Vector view of row-engine output: the row path computes trow lists and
   derives the same vectors the columnar path computes natively. *)
let vann_of_rows (rid0 : int) (rows : trow list) : vann =
  let n = List.length rows in
  let cons = Bytes.create n
  and ret = Bytes.create n
  and surv = Bytes.create n in
  let ranges = Array.make n [] in
  let any_ranges = ref false in
  let total = ref 0 in
  List.iteri
    (fun i r ->
      bset cons i r.consistent;
      bset ret i r.retained;
      bset surv i r.surviving;
      if r.ranges <> [] then any_ranges := true;
      ranges.(i) <- r.ranges;
      total := !total + List.length r.parents)
    rows;
  let off = Array.make (n + 1) 0 in
  let flat = Array.make !total 0 in
  let k = ref 0 in
  List.iteri
    (fun i r ->
      off.(i) <- !k;
      List.iter
        (fun p ->
          flat.(!k) <- p;
          incr k)
        r.parents)
    rows;
  off.(n) <- !k;
  {
    v_n = n;
    v_rid0 = rid0;
    v_consistent = cons;
    v_retained = ret;
    v_surviving = surv;
    v_parents = P_many (off, flat);
    v_ranges = (if !any_ranges then Some ranges else None);
  }

let rows_of_ann (ann : vann) (data : C.t) : trow list =
  let vals = C.to_values data in
  List.init ann.v_n (fun i ->
      {
        rid = ann.v_rid0 + i;
        data = vals.(i);
        consistent = bget ann.v_consistent i;
        retained = bget ann.v_retained i;
        surviving = bget ann.v_surviving i;
        parents = parents_list ann.v_parents i;
        ranges = rng_at ann.v_ranges i;
      })

(* --- Accessors ---------------------------------------------------------- *)

let rows (ot : op_trace) : trow list = Lazy.force ot.rows
let data_at (ot : op_trace) i = ot.data_at i
let n_rows (ot : op_trace) = ot.ann.v_n
let rid0 (ot : op_trace) = ot.ann.v_rid0
let consistent_at (ot : op_trace) i = bget ot.ann.v_consistent i
let retained_at (ot : op_trace) i = bget ot.ann.v_retained i
let surviving_at (ot : op_trace) i = bget ot.ann.v_surviving i
let parents_at (ot : op_trace) i = parents_list ot.ann.v_parents i

let op_trace (tr : t) (op_id : int) : op_trace option =
  List.find_opt (fun o -> o.op_id = op_id) tr.ops

let root_rows (tr : t) : trow list =
  match op_trace tr tr.root_op with Some o -> rows o | None -> []

(* Every operator owns the contiguous rid block [rid0, rid0 + n). *)
let find_row (tr : t) (rid : int) : (trow * int) option =
  List.find_map
    (fun o ->
      let a = o.ann in
      if rid >= a.v_rid0 && rid < a.v_rid0 + a.v_n then
        Some (List.nth (rows o) (rid - a.v_rid0), o.op_id)
      else None)
    tr.ops

(* --- Optimistic NIP matching over rows with aggregate ranges ----------- *)

let float_of_value (v : Value.t) : float option =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let interval_satisfies (c : Expr.cmp) (bound : Value.t) ((lo, hi) : float * float)
    : bool =
  match float_of_value bound with
  | None -> false
  | Some b -> (
    match c with
    | Expr.Eq -> lo <= b && b <= hi
    | Expr.Neq -> not (lo = b && hi = b)
    | Expr.Lt -> lo < b
    | Expr.Le -> lo <= b
    | Expr.Gt -> hi > b
    | Expr.Ge -> hi >= b)

(* Match a traced row against an operator-level NIP, using achievable
   intervals for fields produced by aggregation. *)
let row_matches (nip : Nip.t) (row_data : Value.t)
    (ranges : (string * (float * float)) list) : bool =
  match nip with
  | Nip.Tup constraints ->
    List.for_all
      (fun (label, pat) ->
        match pat, List.assoc_opt label ranges with
        | Nip.Pred (c, bound), Some interval -> interval_satisfies c bound interval
        | Nip.Prim bound, Some interval ->
          interval_satisfies Expr.Eq bound interval
        | _ -> (
          match Value.field label row_data with
          | Some fv -> Nip.matches fv pat
          | None -> false))
      constraints
  | other -> Nip.matches row_data other

(* --- Vectorized NIP matching ------------------------------------------- *)

(* Per-column NIP constraint mask.  Fast paths cover the constraint kinds
   the scenario NIPs actually hit in bulk (string/int literals on typed
   columns, all-[Any] bag cardinality); everything else falls back to
   matching the materialized *field* per row — never the whole row. *)
let int_cmp (c : Expr.cmp) (v : int) (k : int) : bool =
  match c with
  | Expr.Eq -> v = k
  | Expr.Neq -> v <> k
  | Expr.Lt -> v < k
  | Expr.Le -> v <= k
  | Expr.Gt -> v > k
  | Expr.Ge -> v >= k

let rec col_mask (c : C.col) (pat : Nip.t) : Bytes.t =
  let n = C.col_length c in
  let present p i = match p with None -> true | Some bv -> C.Bitv.get bv i in
  match c, pat with
  | _, Nip.Any -> ball n true
  | C.CNull _, _ -> ball n (Nip.matches Value.Null pat)
  | C.CConst (_, v), _ -> ball n (Nip.matches v pat)
  | C.CStr (codes, p), Nip.Prim (Value.String s) ->
    let sc = C.Dict.intern s in
    Bytes.init n (fun i -> chr (present p i && codes.(i) = sc))
  | C.CInt (a, p), Nip.Prim (Value.Int k) ->
    Bytes.init n (fun i -> chr (present p i && a.(i) = k))
  | C.CInt (a, p), Nip.Pred (cmp, Value.Int k) ->
    Bytes.init n (fun i -> chr (present p i && int_cmp cmp a.(i) k))
  | C.CStr (codes, p), Nip.Pred (cmp, (Value.String _ as x)) ->
    Bytes.init n (fun i ->
        chr
          (present p i
          && Expr.eval_cmp cmp (Value.String (C.Dict.lookup codes.(i))) x))
  | C.CTuple (_, fields, p), Nip.Tup constraints ->
    (* Tuple patterns never match Null, and a constrained field that is
       absent from the tuple fails every row. *)
    let base =
      List.fold_left
        (fun acc (label, fpat) ->
          match List.assoc_opt label fields with
          | Some fc -> band acc (col_mask fc fpat)
          | None -> band acc (ball n false))
        (ball n true) constraints
    in
    (match p with
    | None -> base
    | Some _ ->
      Bytes.init n (fun i -> chr (present p i && bget base i)))
  | C.CBag bg, Nip.Bag (pats, star)
    when List.for_all (fun q -> q = Nip.Any) pats ->
    (* Only element counts matter: supply >= |pats|, exactly without *. *)
    let np = List.length pats in
    Bytes.init n (fun i ->
        if not (present bg.C.bpresent i) then chr (np = 0)
        else begin
          let supply = ref 0 in
          for j = bg.C.boff.(i) to bg.C.boff.(i + 1) - 1 do
            supply := !supply + bg.C.bmult.(j)
          done;
          chr (!supply >= np && (star || !supply = np))
        end)
  | C.CBag bg, Nip.Bag (pats, star) ->
    (* Vectorize the element-pattern matches over the flattened element
       column, then run Definition 4's bipartite feasibility per row on
       the precomputed bits — no per-row tree reconstruction. *)
    let slots =
      let rec group acc = function
        | [] -> List.rev acc
        | p :: rest ->
          let same, different =
            List.partition (fun q -> Stdlib.compare p q = 0) rest
          in
          group ((p, 1 + List.length same) :: acc) different
      in
      group [] pats
    in
    let slot_masks =
      List.map (fun (p, d) -> (col_mask bg.C.belems p, d)) slots
    in
    let demands = Array.of_list (List.map snd slot_masks) in
    let masks = Array.of_list (List.map fst slot_masks) in
    let demand_total = Array.fold_left ( + ) 0 demands in
    (match slot_masks with
    | [ (mask, d) ] ->
      (* One slot: the flow is just the matching supply — route [d]
         units iff the matching multiplicities sum to at least [d]. *)
      Bytes.init n (fun i ->
          if not (present bg.C.bpresent i) then chr (pats = [])
          else begin
            let lo = bg.C.boff.(i) and hi = bg.C.boff.(i + 1) in
            let matching = ref 0 and total = ref 0 in
            for j = lo to hi - 1 do
              total := !total + bg.C.bmult.(j);
              if bget mask j then matching := !matching + bg.C.bmult.(j)
            done;
            chr (!matching >= d && (star || !total = d))
          end)
    | _ ->
    Bytes.init n (fun i ->
        if not (present bg.C.bpresent i) then chr (pats = [])
        else begin
          let lo = bg.C.boff.(i) and hi = bg.C.boff.(i + 1) in
          let ni = hi - lo in
          let supplies = Array.sub bg.C.bmult lo ni in
          let supply_total = Array.fold_left ( + ) 0 supplies in
          if supply_total < demand_total || ((not star) && supply_total <> demand_total)
          then '\000'
          else begin
            let edge j e = bget masks.(j) (lo + e) in
            let flow = Nip.bag_flow ~sources:demands ~sinks:supplies ~edge in
            chr (flow = demand_total)
          end
        end))
  | _, _ -> Bytes.init n (fun i -> chr (Nip.matches (C.col_get c i) pat))

(* Vectorized [row_matches] over a batch: AND of per-constraint column
   masks, with the achievable-interval override applied row-wise wherever
   a row's ranges carry the constrained label. *)
let nip_mask (nip : Nip.t) (b : C.t)
    (vranges : (string * (float * float)) list array option) : Bytes.t =
  let n = C.length b in
  match nip with
  | Nip.Any -> ball n true
  | Nip.Tup constraints ->
    let constraint_mask (label, pat) =
      let base =
        match C.cols b with
        | Some fs -> (
          match List.assoc_opt label fs with
          | Some c -> col_mask c pat
          | None -> ball n false)
        | None ->
          Bytes.init n (fun i ->
              match Value.field label (C.get_row b i) with
              | Some fv -> chr (Nip.matches fv pat)
              | None -> '\000')
      in
      (match vranges, pat with
      | Some arr, Nip.Pred (c, x) ->
        for i = 0 to n - 1 do
          match List.assoc_opt label arr.(i) with
          | Some iv -> bset base i (interval_satisfies c x iv)
          | None -> ()
        done
      | Some arr, Nip.Prim x ->
        for i = 0 to n - 1 do
          match List.assoc_opt label arr.(i) with
          | Some iv -> bset base i (interval_satisfies Expr.Eq x iv)
          | None -> ()
        done
      | _ -> ());
      base
    in
    List.fold_left
      (fun acc cstr -> band acc (constraint_mask cstr))
      (ball n true) constraints
  | other -> Bytes.init n (fun i -> chr (Nip.matches (C.get_row b i) other))

(* --- Shared tracing state ----------------------------------------------- *)

type state = { mutable next_rid : int; mutable traces : op_trace list }

let fresh_rid st =
  let rid = st.next_rid in
  st.next_rid <- rid + 1;
  rid

(* Row-path record: rows carry their (contiguous, ascending) rids already;
   derive the flag vectors the columnar consumers read. *)
let record st op nip trows =
  let rid0 = st.next_rid - List.length trows in
  st.traces <-
    {
      op_id = op.Query.id;
      op_node = op.Query.node;
      nip;
      ann = vann_of_rows rid0 trows;
      rows = Lazy.from_val trows;
      data_at =
        (let arr = lazy (Array.of_list trows) in
         fun i -> (Lazy.force arr).(i).data);
    }
    :: st.traces;
  trows

(* key projection on a plain tuple *)
let key_of attrs (t : Value.t) : Value.t =
  Value.Tuple
    (List.map
       (fun a -> (a, Option.value ~default:Value.Null (Value.field a t)))
       attrs)

let group_by (key : trow -> Value.t) (trows : trow list) :
    (Value.t * trow list) list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = key row in
      match Hashtbl.find_opt tbl k with
      | Some rs -> Hashtbl.replace tbl k (row :: rs)
      | None ->
        order := k :: !order;
        Hashtbl.replace tbl k [ row ])
    trows;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

(* --- Row-at-a-time tracing (WHYNOT_ROW_ENGINE) --------------------------- *)

let run_rows ~revalidate ~sample_stride ~(env : Typecheck.env)
    (db : Relation.Db.t) (sa : Alternatives.sa) (bt : Backtrace.t) : t =
  let st = { next_rid = 0; traces = [] } in
  let q = sa.Alternatives.query in
  (* rid -> consistency, for the no-re-validation ablation, which checks
     compatibility at the table accesses only and then propagates the flag
     forward (the behaviour of prior lineage-based approaches) *)
  let row_consistency : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let fields_of sub =
    match Typecheck.infer_result env sub with
    | Ok ty -> Vtype.relation_fields ty
    | Error e ->
      invalid_arg ("Tracing.run: ill-typed SA query: " ^ e.Typecheck.message)
  in
  let rec go (op : Query.t) : trow list =
    let nip = Backtrace.op_nip bt op.Query.id in
    let is_table =
      match op.Query.node with Query.Table _ -> true | _ -> false
    in
    let mk ?(ranges = []) ?(retained = true) ?surviving ~parents data =
      let surviving = Option.value ~default:retained surviving in
      (* the rid is drawn before the consistency check so that sampled
         runs skip re-validation on exactly the rows whose *global* rid
         falls off the stride — the same rows the columnar engine skips,
         because both engines allocate identical contiguous rid blocks *)
      let rid = fresh_rid st in
      let consistent =
        if revalidate || is_table then
          (sample_stride <= 1 || rid mod sample_stride = 0)
          && row_matches nip data ranges
        else
          List.exists
            (fun pid ->
              Option.value ~default:false
                (Hashtbl.find_opt row_consistency pid))
            parents
      in
      Hashtbl.replace row_consistency rid consistent;
      { rid; data; consistent; retained; surviving; parents; ranges }
    in
    match op.Query.node, op.Query.children with
    | Query.Table name, [] ->
      let rel = Relation.Db.find_exn name db in
      let trows =
        List.map
          (fun t -> mk ~retained:true ~surviving:true ~parents:[] t)
          (Relation.tuples rel)
      in
      record st op nip trows
    | Query.Select pred, [ c ] ->
      let input = go c in
      let trows =
        List.map
          (fun r ->
            let keeps = Expr.eval_pred r.data pred in
            {
              (mk ~ranges:r.ranges ~retained:keeps
                 ~surviving:(r.surviving && keeps) ~parents:[ r.rid ] r.data)
              with
              consistent = r.consistent;
            })
          input
      in
      record st op nip trows
    | Query.Project cols, [ c ] ->
      let input = go c in
      let project t =
        Value.Tuple (List.map (fun (n, e) -> (n, Expr.eval t e)) cols)
      in
      let project_ranges ranges =
        List.filter_map
          (fun (n, e) ->
            match e with
            | Expr.Attr a ->
              Option.map (fun iv -> (n, iv)) (List.assoc_opt a ranges)
            | _ -> None)
          cols
      in
      let trows =
        List.map
          (fun r ->
            mk
              ~ranges:(project_ranges r.ranges)
              ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              (project r.data))
          input
      in
      record st op nip trows
    | Query.Rename pairs, [ c ] ->
      let input = go c in
      let rename_label l =
        match List.find_opt (fun (_, old) -> String.equal old l) pairs with
        | Some (fresh, _) -> fresh
        | None -> l
      in
      let rename t =
        match t with
        | Value.Tuple fs ->
          Value.Tuple (List.map (fun (l, v) -> (rename_label l, v)) fs)
        | other -> other
      in
      let trows =
        List.map
          (fun r ->
            mk
              ~ranges:(List.map (fun (l, iv) -> (rename_label l, iv)) r.ranges)
              ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              (rename r.data))
          input
      in
      record st op nip trows
    | Query.Dedup, [ c ] ->
      let input = go c in
      let trows =
        List.map
          (fun (data, members) ->
            {
              (mk ~retained:true
                 ~surviving:(List.exists (fun m -> m.surviving) members)
                 ~parents:(List.map (fun m -> m.rid) members)
                 data)
              with
              consistent = List.exists (fun m -> m.consistent) members;
            })
          (group_by (fun r -> r.data) input)
      in
      record st op nip trows
    | Query.Union, [ l; r ] ->
      let il = go l and ir = go r in
      let trows =
        List.map
          (fun p ->
            {
              (mk ~ranges:p.ranges ~retained:true ~surviving:p.surviving
                 ~parents:[ p.rid ] p.data)
              with
              consistent = p.consistent;
            })
          (il @ ir)
      in
      record st op nip trows
    | Query.Diff, [ l; r ] ->
      let il = go l and ir = go r in
      (* Relaxation keeps every left row; [surviving] reflects true bag
         difference against the surviving right rows. *)
      let surviving_right = Hashtbl.create 32 in
      List.iter
        (fun p ->
          if p.surviving then
            Hashtbl.replace surviving_right p.data
              (1
              + Option.value ~default:0
                  (Hashtbl.find_opt surviving_right p.data)))
        ir;
      let trows =
        List.map
          (fun p ->
            let removed =
              p.surviving
              &&
              match Hashtbl.find_opt surviving_right p.data with
              | Some n when n > 0 ->
                Hashtbl.replace surviving_right p.data (n - 1);
                true
              | _ -> false
            in
            {
              (mk ~ranges:p.ranges ~retained:(not removed)
                 ~surviving:(p.surviving && not removed) ~parents:[ p.rid ]
                 p.data)
              with
              consistent = p.consistent;
            })
          il
      in
      record st op nip trows
    | Query.Flatten_tuple a, [ c ] ->
      let input = go c in
      let inner_ty =
        match List.assoc_opt a (fields_of c) with
        | Some ty -> ty
        | None -> invalid_arg ("Tracing: unknown attribute " ^ a)
      in
      let trows =
        List.map
          (fun r ->
            let data =
              match Value.field a r.data with
              | Some (Value.Tuple _ as inner) -> Value.concat_tuples r.data inner
              | _ -> Value.concat_tuples r.data (Vtype.null_tuple inner_ty)
            in
            mk ~ranges:r.ranges ~retained:true ~surviving:r.surviving
              ~parents:[ r.rid ] data)
          input
      in
      record st op nip trows
    | Query.Flatten (kind, a), [ c ] ->
      let input = go c in
      let inner_ty =
        match List.assoc_opt a (fields_of c) with
        | Some (Vtype.TBag ety) -> ety
        | _ -> invalid_arg ("Tracing: attribute " ^ a ^ " is not a relation")
      in
      let trows =
        List.concat_map
          (fun r ->
            let elems =
              match Value.field a r.data with
              | Some (Value.Bag _ as bag) -> Value.expand bag
              | _ -> []
            in
            match elems with
            | [] ->
              (* tracked exactly because the inner flatten drops it *)
              let keeps = kind = Query.Flat_outer in
              [
                mk ~ranges:r.ranges ~retained:keeps
                  ~surviving:(r.surviving && keeps) ~parents:[ r.rid ]
                  (Value.concat_tuples r.data (Vtype.null_tuple inner_ty));
              ]
            | elems ->
              List.map
                (fun u ->
                  mk ~ranges:r.ranges ~retained:true ~surviving:r.surviving
                    ~parents:[ r.rid ]
                    (Value.concat_tuples r.data u))
                elems)
          input
      in
      record st op nip trows
    | Query.Join (kind, pred), [ l; r ] ->
      let il = go l and ir = go r in
      let lnull = Vtype.null_tuple (Vtype.TTuple (fields_of l)) in
      let rnull = Vtype.null_tuple (Vtype.TTuple (fields_of r)) in
      let matched_l = Hashtbl.create 64 and matched_r = Hashtbl.create 64 in
      let surv_matched_l = Hashtbl.create 64
      and surv_matched_r = Hashtbl.create 64 in
      (* Equi-key conjuncts make the candidate enumeration a hash join —
         one of the design choices that keep tracing scalable (§6.1); any
         pair satisfying the full predicate necessarily agrees on the
         equi-key conjuncts, so probing by key is lossless and only the
         residual predicate needs evaluating per candidate.  Candidates
         are enumerated lazily, so even the keyless (cross-product) trace
         never materializes the |L|·|R| pair list. *)
      let lfields = List.map fst (fields_of l)
      and rfields = List.map fst (fields_of r) in
      let keys, residual = Engine.Exec.equi_split lfields rfields pred in
      let candidate_pairs : (trow * trow) Seq.t =
        match keys with
        | [] ->
          Seq.concat_map
            (fun lp -> Seq.map (fun rp -> (lp, rp)) (List.to_seq ir))
            (List.to_seq il)
        | keys ->
          let lkey_attrs = List.map fst keys
          and rkey_attrs = List.map snd keys in
          let key_of_row attrs t =
            List.map
              (fun a -> Option.value ~default:Value.Null (Value.field a t))
              attrs
          in
          (* Rows whose key contains Null are not indexed: [Null = Null]
             is false under [eval_pred], so they cannot match (and a Null
             in a probe key then finds no bucket either). *)
          let right_index = Hashtbl.create 256 in
          List.iter
            (fun rp ->
              let k = key_of_row rkey_attrs rp.data in
              if not (List.exists (fun v -> v = Value.Null) k) then
                Hashtbl.replace right_index k
                  (rp :: Option.value ~default:[] (Hashtbl.find_opt right_index k)))
            ir;
          Seq.concat_map
            (fun lp ->
              let k = key_of_row lkey_attrs lp.data in
              Seq.map
                (fun rp -> (lp, rp))
                (List.to_seq
                   (Option.value ~default:[] (Hashtbl.find_opt right_index k))))
            (List.to_seq il)
      in
      let matched =
        Seq.filter_map
          (fun (lp, rp) ->
            let data = Value.concat_tuples lp.data rp.data in
            if Expr.eval_pred data residual then begin
              Hashtbl.replace matched_l lp.rid ();
              Hashtbl.replace matched_r rp.rid ();
              if lp.surviving && rp.surviving then begin
                Hashtbl.replace surv_matched_l lp.rid ();
                Hashtbl.replace surv_matched_r rp.rid ()
              end;
              Some
                (mk
                   ~ranges:(lp.ranges @ rp.ranges)
                   ~retained:true
                   ~surviving:(lp.surviving && rp.surviving)
                   ~parents:[ lp.rid; rp.rid ]
                   data)
            end
            else None)
          candidate_pairs
        |> List.of_seq
      in
      let pad_left =
        List.filter_map
          (fun lp ->
            if Hashtbl.mem matched_l lp.rid then None
            else
              let keeps = kind = Query.Left || kind = Query.Full in
              Some
                (mk ~ranges:lp.ranges ~retained:keeps
                   ~surviving:
                     (lp.surviving && keeps
                     && not (Hashtbl.mem surv_matched_l lp.rid))
                   ~parents:[ lp.rid ]
                   (Value.concat_tuples lp.data rnull)))
          il
      in
      let pad_right =
        List.filter_map
          (fun rp ->
            if Hashtbl.mem matched_r rp.rid then None
            else
              let keeps = kind = Query.Right || kind = Query.Full in
              Some
                (mk ~ranges:rp.ranges ~retained:keeps
                   ~surviving:
                     (rp.surviving && keeps
                     && not (Hashtbl.mem surv_matched_r rp.rid))
                   ~parents:[ rp.rid ]
                   (Value.concat_tuples lnull rp.data)))
          ir
      in
      record st op nip (matched @ pad_left @ pad_right)
    | Query.Nest_tuple (pairs, c_name), [ c ] ->
      let input = go c in
      let attrs = List.map snd pairs in
      let nest t =
        match t with
        | Value.Tuple fs ->
          let rest = List.filter (fun (l, _) -> not (List.mem l attrs)) fs in
          let nested =
            List.map
              (fun (label, a) ->
                (label, Option.value ~default:Value.Null (List.assoc_opt a fs)))
              pairs
          in
          Value.Tuple (rest @ [ (c_name, Value.Tuple nested) ])
        | other -> other
      in
      let trows =
        List.map
          (fun r ->
            mk
              ~ranges:
                (List.filter (fun (l, _) -> not (List.mem l attrs)) r.ranges)
              ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              (nest r.data))
          input
      in
      record st op nip trows
    | Query.Nest_rel (pairs, c_name), [ c ] ->
      let input = go c in
      let attrs = List.map snd pairs in
      let all = List.map fst (fields_of c) in
      let group_attrs = List.filter (fun a -> not (List.mem a attrs)) all in
      let proj t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               (label, Option.value ~default:Value.Null (Value.field a t)))
             pairs)
      in
      let nest_members members =
        Value.bag_of_list (List.map (fun m -> proj m.data) members)
      in
      let trows =
        List.concat_map
          (fun (k, members) ->
            let relaxed_data =
              Value.concat_tuples k
                (Value.Tuple [ (c_name, nest_members members) ])
            in
            let surviving_members = List.filter (fun m -> m.surviving) members in
            let original_data =
              if surviving_members = [] then None
              else
                Some
                  (Value.concat_tuples k
                     (Value.Tuple [ (c_name, nest_members surviving_members) ]))
            in
            let relaxed =
              mk ~retained:true
                ~surviving:(original_data = Some relaxed_data)
                ~parents:(List.map (fun m -> m.rid) members)
                relaxed_data
            in
            match original_data with
            | Some od when od <> relaxed_data ->
              [
                relaxed;
                mk ~retained:true ~surviving:true
                  ~parents:(List.map (fun m -> m.rid) surviving_members)
                  od;
              ]
            | _ -> [ relaxed ])
          (group_by (fun r -> key_of group_attrs r.data) input)
      in
      record st op nip trows
    | Query.Agg_tuple (fn, a, b), [ c ] ->
      let input = go c in
      let trows =
        List.map
          (fun r ->
            let values =
              match Value.field a r.data with
              | Some (Value.Bag _ as bag) ->
                List.map
                  (fun v ->
                    match v with
                    | Value.Tuple [ (_, inner) ] -> inner
                    | other -> other)
                  (Value.expand bag)
              | _ -> []
            in
            let data =
              Value.concat_tuples r.data
                (Value.Tuple [ (b, Agg.apply fn values) ])
            in
            let ranges =
              match Agg.achievable_range fn values with
              | Some iv -> (b, iv) :: r.ranges
              | None -> r.ranges
            in
            mk ~ranges ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              data)
          input
      in
      record st op nip trows
    | Query.Group_agg (group, aggs), [ c ] ->
      let input = go c in
      let group_key t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               (label, Option.value ~default:Value.Null (Value.field a t)))
             group)
      in
      let aggregate members =
        let agg_fields_and_ranges =
          List.map
            (fun (fn, a, out) ->
              let values =
                match a with
                | Some a ->
                  List.map
                    (fun m ->
                      Option.value ~default:Value.Null (Value.field a m.data))
                    members
                | None -> List.map (fun _ -> Value.Int 1) members
              in
              let field = (out, Agg.apply fn values) in
              let range =
                Option.map (fun iv -> (out, iv)) (Agg.achievable_range fn values)
              in
              (field, range))
            aggs
        in
        let fields = List.map fst agg_fields_and_ranges in
        let ranges = List.filter_map snd agg_fields_and_ranges in
        (fields, ranges)
      in
      let trows =
        List.concat_map
          (fun (k, members) ->
            let fields, ranges = aggregate members in
            let relaxed_data = Value.concat_tuples k (Value.Tuple fields) in
            let surviving_members = List.filter (fun m -> m.surviving) members in
            let original_data =
              if surviving_members = [] then None
              else
                let fields, _ = aggregate surviving_members in
                Some (Value.concat_tuples k (Value.Tuple fields))
            in
            let relaxed =
              mk ~ranges ~retained:true
                ~surviving:(original_data = Some relaxed_data)
                ~parents:(List.map (fun m -> m.rid) members)
                relaxed_data
            in
            match original_data with
            | Some od when od <> relaxed_data ->
              [
                relaxed;
                mk ~retained:true ~surviving:true
                  ~parents:(List.map (fun m -> m.rid) surviving_members)
                  od;
              ]
            | _ -> [ relaxed ])
          (group_by (fun r -> group_key r.data) input)
      in
      record st op nip trows
    | _ -> invalid_arg "Tracing.run: malformed query"
  in
  ignore (go q);
  { sa; ops = List.rev st.traces; root_op = q.Query.id }

(* --- Batch-native tracing (the default engine) --------------------------- *)

(* Per-operator result of the vectorized relaxed evaluation: the data
   batch plus the annotation vectors, before per-row trees exist. *)
type cres = {
  c_rid0 : int;
  c_n : int;
  c_data : C.t;
  c_cons : Bytes.t;
  c_ret : Bytes.t;
  c_surv : Bytes.t;
  c_par : parents;
  c_rng : (string * (float * float)) list array option;
}

(* Group rows by code, first-seen group order, members ascending — the
   order [group_by] produces over the reconstructed rows (codes are exact
   for structural equality, so the classes coincide). *)
let group_indices (codes : int array) : int array array =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun i c ->
      match Hashtbl.find_opt tbl c with
      | Some cell -> cell := i :: !cell
      | None ->
        let cell = ref [ i ] in
        Hashtbl.add tbl c cell;
        order := cell :: !order)
    codes;
  Array.of_list
    (List.rev_map (fun cell -> Array.of_list (List.rev !cell)) !order)

let run_cols ~revalidate ~sample_stride ~(env : Typecheck.env)
    (db : Relation.Db.t) (sa : Alternatives.sa) (bt : Backtrace.t) : t =
  let st = { next_rid = 0; traces = [] } in
  let q = sa.Alternatives.query in
  (* Stride-sampled NIP re-validation: gather every [stride]th row (in
     the congruence class of the op's first global rid, so the sampled
     rows are exactly the rids the row engine samples), run the mask
     kernel on the sub-batch, and scatter the verdicts back into an
     all-false mask — off-sample rows conservatively read inconsistent.
     Must be called right before the op's [crecord], while [st.next_rid]
     still reads as the rid the op's first row is about to receive. *)
  let sampled_mask nip data rng =
    let n = C.length data in
    if sample_stride <= 1 then nip_mask nip data rng
    else begin
      let rid0 = st.next_rid in
      let offset =
        (sample_stride - (rid0 mod sample_stride)) mod sample_stride
      in
      let idx = C.stride_indices ~n ~offset ~stride:sample_stride in
      if Array.length idx = n then nip_mask nip data rng
      else begin
        let mask = ball n false in
        if Array.length idx > 0 then begin
          let sub = C.gather data idx in
          let sub_rng =
            Option.map (fun arr -> Array.map (fun i -> arr.(i)) idx) rng
          in
          let sub_mask = nip_mask nip sub sub_rng in
          Array.iteri (fun j i -> bset mask i (bget sub_mask j)) idx
        end;
        mask
      end
    end
  in
  let fields_of sub =
    match Typecheck.infer_result env sub with
    | Ok ty -> Vtype.relation_fields ty
    | Error e ->
      invalid_arg ("Tracing.run: ill-typed SA query: " ^ e.Typecheck.message)
  in
  (* Children's stored flags drive the no-re-validation ablation; they
     equal the row engine's propagated values (the Select/Union/Diff/
     Dedup overrides coincide with single-parent propagation). *)
  let propagate (children : cres list) (par : parents) n : Bytes.t =
    let cons_of rid =
      List.exists
        (fun ch ->
          rid >= ch.c_rid0
          && rid < ch.c_rid0 + ch.c_n
          && bget ch.c_cons (rid - ch.c_rid0))
        children
    in
    Bytes.init n (fun i -> chr (List.exists cons_of (parents_list par i)))
  in
  let rec go (op : Query.t) : cres =
    let nip = Backtrace.op_nip bt op.Query.id in
    (* Record allocates the op's contiguous rid block post-children —
       exactly the rids the row engine's allocation order yields. *)
    let crecord ~data ~cons ~ret ~surv ~par ~rng : cres =
      let n = C.length data in
      let rid0 = st.next_rid in
      st.next_rid <- rid0 + n;
      let ann =
        {
          v_n = n;
          v_rid0 = rid0;
          v_consistent = cons;
          v_retained = ret;
          v_surviving = surv;
          v_parents = par;
          v_ranges = rng;
        }
      in
      st.traces <-
        {
          op_id = op.Query.id;
          op_node = op.Query.node;
          nip;
          ann;
          rows = lazy (rows_of_ann ann data);
          data_at = (fun i -> C.get_row data i);
        }
        :: st.traces;
      {
        c_rid0 = rid0;
        c_n = n;
        c_data = data;
        c_cons = cons;
        c_ret = ret;
        c_surv = surv;
        c_par = par;
        c_rng = rng;
      }
    in
    let reval_cons ~children ~data ~rng ~par =
      if revalidate then sampled_mask nip data rng
      else propagate children par (C.length data)
    in
    match op.Query.node, op.Query.children with
    | Query.Table name, [] ->
      let rel = Relation.Db.find_exn name db in
      let data = C.of_relation rel in
      let n = C.length data in
      C.note_rows_scanned n;
      crecord ~data
        ~cons:(sampled_mask nip data None)
        ~ret:(ball n true) ~surv:(ball n true) ~par:P_none ~rng:None
    | Query.Select pred, [ c ] ->
      let r = go c in
      let keeps = bytes_of_bitv r.c_n (C.eval_pred_mask r.c_data pred) in
      crecord ~data:r.c_data ~cons:r.c_cons ~ret:keeps
        ~surv:(band r.c_surv keeps) ~par:(P_self r.c_rid0) ~rng:r.c_rng
    | Query.Project cols, [ c ] ->
      let r = go c in
      let n = r.c_n in
      let data =
        if n = 0 then C.empty
        else
          C.of_cols n
            (List.map (fun (nm, e) -> (nm, C.eval_expr r.c_data e)) cols)
      in
      let rng =
        match r.c_rng with
        | None -> None
        | Some arr ->
          norm_rng
            (Array.map
               (fun ranges ->
                 List.filter_map
                   (fun (nm, e) ->
                     match e with
                     | Expr.Attr a ->
                       Option.map (fun iv -> (nm, iv)) (List.assoc_opt a ranges)
                     | _ -> None)
                   cols)
               arr)
      in
      let par = P_self r.c_rid0 in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng ~par)
        ~ret:(ball n true) ~surv:r.c_surv ~par ~rng
    | Query.Rename pairs, [ c ] ->
      let r = go c in
      let n = r.c_n in
      let rename_label l =
        match List.find_opt (fun (_, old) -> String.equal old l) pairs with
        | Some (fresh, _) -> fresh
        | None -> l
      in
      let data =
        if n = 0 then r.c_data
        else
          match C.cols r.c_data with
          | Some fs ->
            C.of_cols n (List.map (fun (l, col) -> (rename_label l, col)) fs)
          | None ->
            C.of_values
              (Array.map
                 (fun t ->
                   match t with
                   | Value.Tuple fs ->
                     Value.Tuple
                       (List.map (fun (l, v) -> (rename_label l, v)) fs)
                   | other -> other)
                 (C.to_values r.c_data))
      in
      let rng =
        Option.map
          (Array.map (List.map (fun (l, iv) -> (rename_label l, iv))))
          r.c_rng
      in
      let par = P_self r.c_rid0 in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng ~par)
        ~ret:(ball n true) ~surv:r.c_surv ~par ~rng
    | Query.Dedup, [ c ] ->
      let r = go c in
      let coder = C.Coder.create () in
      let groups = group_indices (C.row_codes coder r.c_data) in
      let g = Array.length groups in
      let data = C.gather r.c_data (Array.map (fun m -> m.(0)) groups) in
      let cons = Bytes.create g and surv = Bytes.create g in
      let total = Array.fold_left (fun acc m -> acc + Array.length m) 0 groups in
      let off = Array.make (g + 1) 0 in
      let flat = Array.make total 0 in
      let k = ref 0 in
      Array.iteri
        (fun gi members ->
          off.(gi) <- !k;
          bset cons gi
            (Array.exists (fun i -> bget r.c_cons i) members);
          bset surv gi
            (Array.exists (fun i -> bget r.c_surv i) members);
          Array.iter
            (fun i ->
              flat.(!k) <- r.c_rid0 + i;
              incr k)
            members)
        groups;
      off.(g) <- !k;
      crecord ~data ~cons ~ret:(ball g true) ~surv ~par:(P_many (off, flat))
        ~rng:None
    | Query.Union, [ l; r ] ->
      let a = go l and b = go r in
      let n = a.c_n + b.c_n in
      let data = C.vstack [ a.c_data; b.c_data ] in
      let par =
        P_one
          (Array.init n (fun i ->
               if i < a.c_n then a.c_rid0 + i else b.c_rid0 + (i - a.c_n)))
      in
      let rng =
        match a.c_rng, b.c_rng with
        | None, None -> None
        | ra, rb ->
          Some
            (Array.init n (fun i ->
                 if i < a.c_n then rng_at ra i else rng_at rb (i - a.c_n)))
      in
      crecord ~data
        ~cons:(Bytes.cat a.c_cons b.c_cons)
        ~ret:(ball n true)
        ~surv:(Bytes.cat a.c_surv b.c_surv)
        ~par ~rng
    | Query.Diff, [ l; r ] ->
      let a = go l and b = go r in
      (* Relaxation keeps every left row; multiset difference against the
         *surviving* right rows decides [retained]/[surviving]. *)
      let coder = C.Coder.create () in
      let lc = C.row_codes coder a.c_data in
      let rc = C.row_codes coder b.c_data in
      let counts = Hashtbl.create 32 in
      Array.iteri
        (fun j code ->
          if bget b.c_surv j then
            Hashtbl.replace counts code
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts code)))
        rc;
      let ret = Bytes.create a.c_n and surv = Bytes.create a.c_n in
      Array.iteri
        (fun i code ->
          let removed =
            bget a.c_surv i
            &&
            match Hashtbl.find_opt counts code with
            | Some n when n > 0 ->
              Hashtbl.replace counts code (n - 1);
              true
            | _ -> false
          in
          bset ret i (not removed);
          bset surv i (bget a.c_surv i && not removed))
        lc;
      crecord ~data:a.c_data ~cons:a.c_cons ~ret ~surv ~par:(P_self a.c_rid0)
        ~rng:a.c_rng
    | Query.Flatten_tuple a, [ c ] ->
      let r = go c in
      let n = r.c_n in
      let inner_ty =
        match List.assoc_opt a (fields_of c) with
        | Some ty -> ty
        | None -> invalid_arg ("Tracing: unknown attribute " ^ a)
      in
      let null_inner = Vtype.null_tuple inner_ty in
      let data =
        if n = 0 then C.empty
        else
          let right =
            match C.find_col r.c_data a with
            | Some (C.CTuple (_, _, None) as ic) -> { C.n; row = ic }
            | Some col ->
              C.of_values
                (Array.init n (fun i ->
                     match C.col_get col i with
                     | Value.Tuple _ as inner -> inner
                     | _ -> null_inner))
            | None -> (
              match C.cols r.c_data with
              | Some _ -> C.broadcast n null_inner
              | None ->
                C.of_values
                  (Array.init n (fun i ->
                       match Value.field a (C.get_row r.c_data i) with
                       | Some (Value.Tuple _ as inner) -> inner
                       | _ -> null_inner)))
          in
          C.hstack r.c_data right
      in
      let par = P_self r.c_rid0 in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng:r.c_rng ~par)
        ~ret:(ball n true) ~surv:r.c_surv ~par ~rng:r.c_rng
    | Query.Flatten (kind, a), [ c ] ->
      let r = go c in
      let n = r.c_n in
      let inner_ty =
        match List.assoc_opt a (fields_of c) with
        | Some (Vtype.TBag ety) -> ety
        | _ -> invalid_arg ("Tracing: attribute " ^ a ^ " is not a relation")
      in
      let null_inner = Vtype.null_tuple inner_ty in
      (* Expanded output interleaves one pad row at each empty-bag input
         position, exactly like the row engine's [concat_map]. *)
      let parent_idx, pad, right =
        match C.find_col r.c_data a with
        | Some (C.CBag bg) ->
          let present i =
            match bg.C.bpresent with
            | None -> true
            | Some p -> C.Bitv.get p i
          in
          let total = ref 0 in
          for i = 0 to n - 1 do
            let cnt =
              if not (present i) then 0
              else begin
                let s = ref 0 in
                for j = bg.C.boff.(i) to bg.C.boff.(i + 1) - 1 do
                  s := !s + bg.C.bmult.(j)
                done;
                !s
              end
            in
            total := !total + max 1 cnt
          done;
          let m = !total in
          let parent_idx = Array.make m 0 and sel = Array.make m 0 in
          let ne = C.col_length bg.C.belems in
          let k = ref 0 in
          for i = 0 to n - 1 do
            let start = !k in
            if present i then
              for j = bg.C.boff.(i) to bg.C.boff.(i + 1) - 1 do
                for _ = 1 to bg.C.bmult.(j) do
                  parent_idx.(!k) <- i;
                  sel.(!k) <- j;
                  incr k
                done
              done;
            if !k = start then begin
              parent_idx.(!k) <- i;
              sel.(!k) <- ne;
              incr k
            end
          done;
          let pad = Bytes.init m (fun o -> chr (sel.(o) = ne)) in
          let elem_batch = { C.n = ne; row = bg.C.belems } in
          let right =
            C.gather (C.vstack [ elem_batch; C.broadcast 1 null_inner ]) sel
          in
          (parent_idx, pad, right)
        | col_opt ->
          let get_field i =
            match col_opt with
            | Some col -> Some (C.col_get col i)
            | None -> Value.field a (C.get_row r.c_data i)
          in
          let elems =
            Array.init n (fun i ->
                match get_field i with
                | Some (Value.Bag _ as bag) -> Value.expand bag
                | _ -> [])
          in
          let m =
            Array.fold_left (fun acc l -> acc + max 1 (List.length l)) 0 elems
          in
          let parent_idx = Array.make m 0 in
          let pad = Bytes.make m '\000' in
          let vals = Array.make m Value.Null in
          let k = ref 0 in
          Array.iteri
            (fun i l ->
              match l with
              | [] ->
                parent_idx.(!k) <- i;
                Bytes.set pad !k '\001';
                vals.(!k) <- null_inner;
                incr k
              | l ->
                List.iter
                  (fun u ->
                    parent_idx.(!k) <- i;
                    vals.(!k) <- u;
                    incr k)
                  l)
            elems;
          (parent_idx, pad, C.of_values vals)
      in
      let m = Array.length parent_idx in
      let data =
        if m = 0 then C.empty else C.hstack (C.gather r.c_data parent_idx) right
      in
      let keeps_pad = kind = Query.Flat_outer in
      let ret = Bytes.init m (fun o -> chr ((not (bget pad o)) || keeps_pad)) in
      let surv =
        Bytes.init m (fun o ->
            chr
              (bget r.c_surv parent_idx.(o)
              && ((not (bget pad o)) || keeps_pad)))
      in
      let par = P_one (Array.map (fun i -> r.c_rid0 + i) parent_idx) in
      let rng =
        Option.map (fun arr -> Array.map (fun i -> arr.(i)) parent_idx) r.c_rng
      in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng ~par)
        ~ret ~surv ~par ~rng
    | Query.Join (kind, pred), [ l; r ] ->
      let a = go l and b = go r in
      let lfs = fields_of l and rfs = fields_of r in
      let lnull = Vtype.null_tuple (Vtype.TTuple lfs) in
      let rnull = Vtype.null_tuple (Vtype.TTuple rfs) in
      let keys, residual =
        Engine.Exec.equi_split (List.map fst lfs) (List.map fst rfs) pred
      in
      let ln = a.c_n and rn = b.c_n in
      let cand_l, cand_r =
        if ln = 0 || rn = 0 then ([||], [||])
        else
          match keys with
          | [] ->
            let li = Array.make (ln * rn) 0 and ri = Array.make (ln * rn) 0 in
            for i = 0 to ln - 1 do
              for j = 0 to rn - 1 do
                li.((i * rn) + j) <- i;
                ri.((i * rn) + j) <- j
              done
            done;
            (li, ri)
          | keys ->
            let coder = C.Coder.create () in
            (* Fast path: every key pair is a dictionary-encoded string
               column on both sides.  Dict codes are global, so they are
               already cross-batch equality codes — no per-cell interning. *)
            let fast_key_cols =
              match C.cols a.c_data, C.cols b.c_data with
              | Some lf, Some rf ->
                let rec collect ks acc =
                  match ks with
                  | [] -> Some (List.rev acc)
                  | (la, ra) :: rest -> (
                    match List.assoc_opt la lf, List.assoc_opt ra rf with
                    | Some (C.CStr (lc, lp)), Some (C.CStr (rc, rp)) ->
                      collect rest (((lc, lp), (rc, rp)) :: acc)
                    | _ -> None)
                in
                collect keys []
              | _ -> None
            in
            let dict_side_codes n (cols : (int array * C.Bitv.t option) list) :
                int array =
              let comps =
                List.map
                  (fun (codes, p) ->
                    match p with
                    | None -> codes
                    | Some bv ->
                      Array.init n (fun i ->
                          if C.Bitv.get bv i then codes.(i) else min_int))
                  cols
              in
              let mixed =
                match comps with
                | [ one ] -> Array.copy one
                | comps -> C.Coder.mix coder comps
              in
              List.iter
                (fun cs ->
                  for i = 0 to n - 1 do
                    if cs.(i) = min_int then mixed.(i) <- -1
                  done)
                comps;
              mixed
            in
            (* Key codes per row; [-1] flags a key containing Null, which
               can never satisfy an equality conjunct. *)
            let side_codes (bd : C.t) attrs : int array =
              let n = C.length bd in
              match C.cols bd with
              | Some fields ->
                let comps =
                  List.map
                    (fun at ->
                      C.Coder.col_codes coder
                        (match List.assoc_opt at fields with
                        | Some col -> col
                        | None -> C.CNull n))
                    attrs
                in
                let mixed = C.Coder.mix coder comps in
                Array.iteri
                  (fun i _ ->
                    if
                      List.exists (fun cs -> cs.(i) = C.Coder.null_code) comps
                    then mixed.(i) <- -1)
                  mixed;
                mixed
              | None ->
                let comps =
                  Array.init n (fun i ->
                      let t = C.get_row bd i in
                      List.map
                        (fun at ->
                          Option.value ~default:Value.Null (Value.field at t))
                        attrs)
                in
                let code_arrays =
                  List.init (List.length attrs) (fun j ->
                      Array.map
                        (fun cs -> C.Coder.value_code coder (List.nth cs j))
                        comps)
                in
                let mixed = C.Coder.mix coder code_arrays in
                Array.iteri
                  (fun i cs ->
                    if List.exists (fun v -> v = Value.Null) cs then
                      mixed.(i) <- -1)
                  comps;
                mixed
            in
            let lc, rc =
              match fast_key_cols with
              | Some kcols ->
                ( dict_side_codes ln (List.map fst kcols),
                  dict_side_codes rn (List.map snd kcols) )
              | None ->
                ( side_codes a.c_data (List.map fst keys),
                  side_codes b.c_data (List.map snd keys) )
            in
            (* Right is always the build side here: the row trace probes
               left rows in order against newest-first right buckets, and
               the candidate order below reproduces that enumeration. *)
            let idx = Hashtbl.create (2 * rn) in
            Array.iteri
              (fun j code ->
                if code >= 0 then
                  Hashtbl.replace idx code
                    (j :: Option.value ~default:[] (Hashtbl.find_opt idx code)))
              rc;
            let li = ref [] and ri = ref [] in
            Array.iteri
              (fun i code ->
                if code >= 0 then
                  match Hashtbl.find_opt idx code with
                  | None -> ()
                  | Some js ->
                    List.iter
                      (fun j ->
                        li := i :: !li;
                        ri := j :: !ri)
                      js)
              lc;
            (Array.of_list (List.rev !li), Array.of_list (List.rev !ri))
      in
      let joined =
        C.hstack (C.gather a.c_data cand_l) (C.gather b.c_data cand_r)
      in
      let mask =
        match residual with
        | Expr.True -> C.Bitv.create (C.length joined) true
        | p -> C.eval_pred_mask joined p
      in
      let keep = C.Bitv.indices mask in
      let nm = Array.length keep in
      let inner =
        if nm = C.length joined then joined else C.filter joined mask
      in
      let matched_l = Bytes.make (max ln 1) '\000'
      and matched_r = Bytes.make (max rn 1) '\000' in
      Array.iter
        (fun k ->
          Bytes.set matched_l cand_l.(k) '\001';
          Bytes.set matched_r cand_r.(k) '\001')
        keep;
      let keeps_l = kind = Query.Left || kind = Query.Full in
      let keeps_r = kind = Query.Right || kind = Query.Full in
      let unmatched mbytes cnt =
        let out = ref [] in
        for i = cnt - 1 downto 0 do
          if Bytes.get mbytes i = '\000' then out := i :: !out
        done;
        Array.of_list !out
      in
      let ul = unmatched matched_l ln and ur = unmatched matched_r rn in
      let nl = Array.length ul and nr = Array.length ur in
      let padl =
        if nl = 0 then C.empty
        else C.hstack (C.gather a.c_data ul) (C.broadcast nl rnull)
      in
      let padr =
        if nr = 0 then C.empty
        else C.hstack (C.broadcast nr lnull) (C.gather b.c_data ur)
      in
      let data =
        C.vstack
          (List.filter (fun t -> C.length t > 0) [ inner; padl; padr ])
      in
      let m = nm + nl + nr in
      let ret = Bytes.create m and surv = Bytes.create m in
      (* An unmatched row is in particular not surv-matched, so the row
         path's extra [not surv_matched] conjunct on pads is vacuous. *)
      Array.iteri
        (fun o k ->
          bset ret o true;
          bset surv o (bget a.c_surv cand_l.(k) && bget b.c_surv cand_r.(k)))
        keep;
      Array.iteri
        (fun o i ->
          bset ret (nm + o) keeps_l;
          bset surv (nm + o) (bget a.c_surv i && keeps_l))
        ul;
      Array.iteri
        (fun o j ->
          bset ret (nm + nl + o) keeps_r;
          bset surv (nm + nl + o) (bget b.c_surv j && keeps_r))
        ur;
      let off = Array.make (m + 1) 0 in
      let flat = Array.make ((2 * nm) + nl + nr) 0 in
      for o = 0 to nm - 1 do
        off.(o) <- 2 * o;
        flat.(2 * o) <- a.c_rid0 + cand_l.(keep.(o));
        flat.((2 * o) + 1) <- b.c_rid0 + cand_r.(keep.(o))
      done;
      for o = 0 to nl - 1 do
        off.(nm + o) <- (2 * nm) + o;
        flat.((2 * nm) + o) <- a.c_rid0 + ul.(o)
      done;
      for o = 0 to nr - 1 do
        off.(nm + nl + o) <- (2 * nm) + nl + o;
        flat.((2 * nm) + nl + o) <- b.c_rid0 + ur.(o)
      done;
      off.(m) <- (2 * nm) + nl + nr;
      let par = P_many (off, flat) in
      let rng =
        match a.c_rng, b.c_rng with
        | None, None -> None
        | ra, rb ->
          Some
            (Array.init m (fun o ->
                 if o < nm then
                   rng_at ra cand_l.(keep.(o)) @ rng_at rb cand_r.(keep.(o))
                 else if o < nm + nl then rng_at ra ul.(o - nm)
                 else rng_at rb ur.(o - nm - nl)))
      in
      let cons = reval_cons ~children:[ a; b ] ~data ~rng ~par in
      crecord ~data ~cons ~ret ~surv ~par ~rng
    | Query.Nest_tuple (pairs, c_name), [ c ] ->
      let r = go c in
      let n = r.c_n in
      let attrs = List.map snd pairs in
      let data =
        if n = 0 then r.c_data
        else
          match C.cols r.c_data with
          | Some fs ->
            let rest =
              List.filter (fun (l, _) -> not (List.mem l attrs)) fs
            in
            let nested =
              List.map
                (fun (label, a) ->
                  ( label,
                    match List.assoc_opt a fs with
                    | Some col -> col
                    | None -> C.CNull n ))
                pairs
            in
            C.of_cols n (rest @ [ (c_name, C.CTuple (n, nested, None)) ])
          | None ->
            C.of_values
              (Array.map
                 (fun t ->
                   match t with
                   | Value.Tuple fs ->
                     let rest =
                       List.filter (fun (l, _) -> not (List.mem l attrs)) fs
                     in
                     let nested =
                       List.map
                         (fun (label, a) ->
                           ( label,
                             Option.value ~default:Value.Null
                               (List.assoc_opt a fs) ))
                         pairs
                     in
                     Value.Tuple (rest @ [ (c_name, Value.Tuple nested) ])
                   | other -> other)
                 (C.to_values r.c_data))
      in
      let rng =
        match r.c_rng with
        | None -> None
        | Some arr ->
          norm_rng
            (Array.map
               (List.filter (fun (l, _) -> not (List.mem l attrs)))
               arr)
      in
      let par = P_self r.c_rid0 in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng ~par)
        ~ret:(ball n true) ~surv:r.c_surv ~par ~rng
    | Query.Nest_rel (pairs, c_name), [ c ] ->
      let r = go c in
      let n = r.c_n in
      let attrs = List.map snd pairs in
      let all = List.map fst (fields_of c) in
      let group_attrs = List.filter (fun a -> not (List.mem a attrs)) all in
      (* Column view of the input; shape-degenerate batches fall back to
         per-row field extraction once, up front. *)
      let fcols =
        match C.cols r.c_data with
        | Some fs -> fs
        | None ->
          List.map
            (fun a ->
              ( a,
                (C.of_values
                   (Array.init n (fun i ->
                        Option.value ~default:Value.Null
                          (Value.field a (C.get_row r.c_data i)))))
                  .C.row ))
            all
      in
      let col_of a =
        match List.assoc_opt a fcols with
        | Some col -> col
        | None -> C.CNull n
      in
      let key_batch =
        C.of_cols n (List.map (fun a -> (a, col_of a)) group_attrs)
      in
      let proj_batch =
        C.of_cols n (List.map (fun (label, a) -> (label, col_of a)) pairs)
      in
      let key_codes = C.eqclasses n (List.map col_of group_attrs) in
      let proj_codes =
        C.eqclasses n (List.map (fun (_, a) -> col_of a) pairs)
      in
      let groups = group_indices key_codes in
      (* Per output row: key representative, canonical bag contents
         (distinct member rows + multiplicities), flags, parents.  Bag
         canonicalisation matches [Value.bag_of_list]: equal projections
         (detected by code equality) merge their multiplicities, and the
         distinct representatives sort by [Value.compare] — so the lazy
         tree reconstruction is byte-identical to the row engine's. *)
      let out_reps = ref []
      and out_elems = ref []
      and out_total = ref 0
      and survs = ref []
      and pars = ref []
      and cnt = ref 0 in
      (* Shared per-call scratch: [proj_codes] are representative row
         indices, so multiplicities live in one [n]-sized count array
         reset after each group. *)
      let mult_of = Array.make n 0 in
      let canon ~only_surv members =
        let distinct = ref [] in
        Array.iter
          (fun i ->
            if (not only_surv) || bget r.c_surv i then begin
              let cd = proj_codes.(i) in
              if mult_of.(cd) = 0 then distinct := cd :: !distinct;
              mult_of.(cd) <- mult_of.(cd) + 1
            end)
          members;
        let ds =
          List.rev_map
            (fun cd ->
              let m = mult_of.(cd) in
              mult_of.(cd) <- 0;
              (cd, m))
            !distinct
        in
        List.sort (fun (a, _) (b, _) -> C.cmp_rows proj_batch a b) ds
      in
      let parents_of ~only_surv members =
        Array.fold_right
          (fun i acc ->
            if (not only_surv) || bget r.c_surv i then (r.c_rid0 + i) :: acc
            else acc)
          members []
      in
      let emit gi elems ~surviving ~parents =
        out_reps := gi :: !out_reps;
        out_elems := elems :: !out_elems;
        out_total := !out_total + List.length elems;
        survs := surviving :: !survs;
        pars := parents :: !pars;
        incr cnt
      in
      Array.iter
        (fun members ->
          let rep = members.(0) in
          let na = Array.length members in
          let ns = ref 0 in
          Array.iter (fun i -> if bget r.c_surv i then incr ns) members;
          let ns = !ns in
          (* The surviving members are a sub-multiset of the group, so
             the two bags are equal iff the member counts are. *)
          emit rep
            (canon ~only_surv:false members)
            ~surviving:(ns = na)
            ~parents:(parents_of ~only_surv:false members);
          if ns > 0 && ns < na then
            emit rep
              (canon ~only_surv:true members)
              ~surviving:true
              ~parents:(parents_of ~only_surv:true members))
        groups;
      let m = !cnt in
      let reps = Array.of_list (List.rev !out_reps) in
      let elems = Array.of_list (List.rev !out_elems) in
      let boff = Array.make (m + 1) 0 in
      let bmult = Array.make !out_total 1 in
      let sel = Array.make !out_total 0 in
      let k = ref 0 in
      Array.iteri
        (fun o es ->
          boff.(o) <- !k;
          List.iter
            (fun (i, mult) ->
              sel.(!k) <- i;
              bmult.(!k) <- mult;
              incr k)
            es)
        elems;
      boff.(m) <- !k;
      let bag_col =
        C.CBag
          {
            C.bn = m;
            boff;
            bmult;
            belems = (C.gather proj_batch sel).C.row;
            bpresent = None;
          }
      in
      let data =
        C.hstack (C.gather key_batch reps) (C.of_cols m [ (c_name, bag_col) ])
      in
      let surv = Bytes.create m in
      List.iteri (fun o v -> bset surv o v) (List.rev !survs);
      let plists = Array.of_list (List.rev !pars) in
      let total = Array.fold_left (fun acc l -> acc + List.length l) 0 plists in
      let off = Array.make (m + 1) 0 in
      let flat = Array.make total 0 in
      let k = ref 0 in
      Array.iteri
        (fun o l ->
          off.(o) <- !k;
          List.iter
            (fun p ->
              flat.(!k) <- p;
              incr k)
            l)
        plists;
      off.(m) <- !k;
      let par = P_many (off, flat) in
      let cons = reval_cons ~children:[ r ] ~data ~rng:None ~par in
      crecord ~data ~cons ~ret:(ball m true) ~surv ~par ~rng:None
    | Query.Agg_tuple (fn, a, b), [ c ] ->
      let r = go c in
      let n = r.c_n in
      let unwrap v =
        match v with Value.Tuple [ (_, inner) ] -> inner | other -> other
      in
      let member_vals : Value.t list array =
        match C.find_col r.c_data a with
        | Some (C.CBag bg) ->
          let evs =
            match bg.C.belems with
            | C.CTuple (_, [ (_, inner) ], None) -> C.col_values inner
            | ec -> Array.map unwrap (C.col_values ec)
          in
          let present i =
            match bg.C.bpresent with
            | None -> true
            | Some p -> C.Bitv.get p i
          in
          Array.init n (fun i ->
              if not (present i) then []
              else begin
                let acc = ref [] in
                for j = bg.C.boff.(i + 1) - 1 downto bg.C.boff.(i) do
                  for _ = 1 to bg.C.bmult.(j) do
                    acc := evs.(j) :: !acc
                  done
                done;
                !acc
              end)
        | col_opt ->
          Array.init n (fun i ->
              let fv =
                match col_opt with
                | Some col -> Some (C.col_get col i)
                | None -> Value.field a (C.get_row r.c_data i)
              in
              match fv with
              | Some (Value.Bag _ as bag) ->
                List.map unwrap (Value.expand bag)
              | _ -> [])
      in
      let agg_vals = Array.map (Agg.apply fn) member_vals in
      let rng =
        norm_rng
          (Array.init n (fun i ->
               let parent = rng_at r.c_rng i in
               match Agg.achievable_range fn member_vals.(i) with
               | Some iv -> (b, iv) :: parent
               | None -> parent))
      in
      let data =
        if n = 0 then C.empty
        else C.hstack r.c_data (C.of_cols n [ (b, (C.of_values agg_vals).C.row) ])
      in
      let par = P_self r.c_rid0 in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng ~par)
        ~ret:(ball n true) ~surv:r.c_surv ~par ~rng
    | Query.Group_agg (group, aggs), [ c ] ->
      let r = go c in
      let n = r.c_n in
      let ucols = C.cols r.c_data in
      let coder = C.Coder.create () in
      let gattrs = List.map snd group in
      let key_codes =
        match ucols with
        | Some fs -> (
          match gattrs with
          | [] -> Array.make n 0
          | gattrs ->
            C.Coder.mix coder
              (List.map
                 (fun a ->
                   C.Coder.col_codes coder
                     (match List.assoc_opt a fs with
                     | Some col -> col
                     | None -> C.CNull n))
                 gattrs))
        | None ->
          Array.init n (fun i ->
              C.Coder.value_code coder
                (Value.Tuple
                   (List.map
                      (fun (label, a) ->
                        ( label,
                          Option.value ~default:Value.Null
                            (Value.field a (C.get_row r.c_data i)) ))
                      group)))
      in
      let groups = group_indices key_codes in
      let reps = Array.map (fun m -> m.(0)) groups in
      let key_vals =
        match ucols with
        | Some fs ->
          C.to_values
            (C.gather
               (C.of_cols n
                  (List.map
                     (fun (label, a) ->
                       ( label,
                         match List.assoc_opt a fs with
                         | Some col -> col
                         | None -> C.CNull n ))
                     group))
               reps)
        | None ->
          Array.map
            (fun i ->
              Value.Tuple
                (List.map
                   (fun (label, a) ->
                     ( label,
                       Option.value ~default:Value.Null
                         (Value.field a (C.get_row r.c_data i)) ))
                   group))
            reps
      in
      (* One member-value accessor per aggregate, column-materialized on
         the uniform path. *)
      let member_value_of : (int -> Value.t) list =
        List.map
          (fun (_, a, _) ->
            match a with
            | None -> fun _ -> Value.Int 1
            | Some a -> (
              match ucols with
              | Some fs ->
                let vs =
                  C.col_values
                    (match List.assoc_opt a fs with
                    | Some col -> col
                    | None -> C.CNull n)
                in
                fun i -> vs.(i)
              | None ->
                fun i ->
                  Option.value ~default:Value.Null
                    (Value.field a (C.get_row r.c_data i))))
          aggs
      in
      let aggregate members =
        let agg_fields_and_ranges =
          List.map2
            (fun (fn, _, out) getv ->
              let values = List.map getv members in
              let field = (out, Agg.apply fn values) in
              let range =
                Option.map (fun iv -> (out, iv)) (Agg.achievable_range fn values)
              in
              (field, range))
            aggs member_value_of
        in
        ( List.map fst agg_fields_and_ranges,
          List.filter_map snd agg_fields_and_ranges )
      in
      let vals = ref []
      and rets = ref []
      and survs = ref []
      and pars = ref []
      and rngs = ref []
      and cnt = ref 0 in
      let emit v ~retained ~surviving ~parents ~ranges =
        vals := v :: !vals;
        rets := retained :: !rets;
        survs := surviving :: !survs;
        pars := parents :: !pars;
        rngs := ranges :: !rngs;
        incr cnt
      in
      Array.iteri
        (fun gi members ->
          let k = key_vals.(gi) in
          let member_list = Array.to_list members in
          let fields, ranges = aggregate member_list in
          let relaxed_data = Value.concat_tuples k (Value.Tuple fields) in
          let surviving_members =
            List.filter (fun i -> bget r.c_surv i) member_list
          in
          let original_data =
            if surviving_members = [] then None
            else
              let fields, _ = aggregate surviving_members in
              Some (Value.concat_tuples k (Value.Tuple fields))
          in
          emit relaxed_data ~retained:true
            ~surviving:(original_data = Some relaxed_data)
            ~parents:(List.map (fun i -> r.c_rid0 + i) member_list)
            ~ranges;
          match original_data with
          | Some od when od <> relaxed_data ->
            emit od ~retained:true ~surviving:true
              ~parents:(List.map (fun i -> r.c_rid0 + i) surviving_members)
              ~ranges:[]
          | _ -> ())
        groups;
      let m = !cnt in
      let data = C.of_values (Array.of_list (List.rev !vals)) in
      let ret = Bytes.create m and surv = Bytes.create m in
      List.iteri (fun o v -> bset ret o v) (List.rev !rets);
      List.iteri (fun o v -> bset surv o v) (List.rev !survs);
      let rng = norm_rng (Array.of_list (List.rev !rngs)) in
      let plists = Array.of_list (List.rev !pars) in
      let total = Array.fold_left (fun acc l -> acc + List.length l) 0 plists in
      let off = Array.make (m + 1) 0 in
      let flat = Array.make total 0 in
      let k = ref 0 in
      Array.iteri
        (fun o l ->
          off.(o) <- !k;
          List.iter
            (fun p ->
              flat.(!k) <- p;
              incr k)
            l)
        plists;
      off.(m) <- !k;
      let par = P_many (off, flat) in
      crecord ~data
        ~cons:(reval_cons ~children:[ r ] ~data ~rng ~par)
        ~ret ~surv ~par ~rng
    | _ -> invalid_arg "Tracing.run: malformed query"
  in
  ignore (go q);
  { sa; ops = List.rev st.traces; root_op = q.Query.id }

let site_relaxed = Obs.Faultinject.register_site "tracing.relaxed"

let run ?(revalidate = true) ?(sample_stride = 1) ~(env : Typecheck.env)
    (db : Relation.Db.t) (sa : Alternatives.sa) (bt : Backtrace.t) : t =
  (* Chaos hook: fires once per SA's relaxed evaluation, inside the
     pipeline's per-phase retry scope, so an armed transient fault here
     is recomputed from the (immutable) backtrace and database. *)
  Obs.Faultinject.fire site_relaxed;
  if C.row_engine () then run_rows ~revalidate ~sample_stride ~env db sa bt
  else run_cols ~revalidate ~sample_stride ~env db sa bt
