lib/core/reparam.ml: Agg Expr List Nested Nrab Opset Query String
