(* Surface syntax for why-not patterns (NIPs), e.g. the running example's
   question reads:  ⟨tuple ⟨city (str NY)⟩ ⟨nList (bag ? star)⟩⟩ with the
   usual parentheses.

   Grammar:
     nip    := ?                       instance placeholder
             | 123 | 1.5               primitive constants
             | (str TEXT)              string constant
             | (null)                  the null value
             | (CMP CONST)             predicate placeholder, CMP one of = != < <= > >=
             | (tuple (NAME nip) ...)  field constraints
             | (bag nip ... star?)     element patterns; a trailing "*" atom
                                       is the multiplicity placeholder      *)

open Nested
open Nrab

exception Parse_error = Sexp.Parse_error

let fail = Sexp.fail

let const_of_atom (a : string) : Value.t =
  match int_of_string_opt a with
  | Some i -> Value.Int i
  | None -> (
    match float_of_string_opt a with
    | Some f when String.contains a '.' -> Value.Float f
    | _ -> (
      match a with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | s -> Value.String s))

let cmp_of_string = function
  | "=" -> Some Expr.Eq
  | "!=" -> Some Expr.Neq
  | "<" -> Some Expr.Lt
  | "<=" -> Some Expr.Le
  | ">" -> Some Expr.Gt
  | ">=" -> Some Expr.Ge
  | _ -> None

let rec of_sexp (s : Sexp.t) : Nip.t =
  match s with
  | Sexp.Atom "?" -> Nip.Any
  | Sexp.Atom a -> Nip.Prim (const_of_atom a)
  | Sexp.List [ Sexp.Atom "str"; Sexp.Atom text ] -> Nip.Prim (Value.String text)
  | Sexp.List [ Sexp.Atom "null" ] -> Nip.Prim Value.Null
  | Sexp.List [ Sexp.Atom op; Sexp.Atom c ] when cmp_of_string op <> None ->
    Nip.Pred (Option.get (cmp_of_string op), const_of_atom c)
  | Sexp.List (Sexp.Atom "tuple" :: fields) ->
    let field = function
      | Sexp.List [ Sexp.Atom name; p ] -> (name, of_sexp p)
      | other -> fail "invalid tuple field %s" (Sexp.to_string other)
    in
    Nip.Tup (List.map field fields)
  | Sexp.List (Sexp.Atom "bag" :: elements) ->
    let star = List.mem (Sexp.Atom "*") elements in
    let elements = List.filter (fun e -> e <> Sexp.Atom "*") elements in
    Nip.Bag (List.map of_sexp elements, star)
  | other -> fail "invalid why-not pattern %s" (Sexp.to_string other)

let cmp_to_string = function
  | Expr.Eq -> "="
  | Expr.Neq -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let rec to_sexp (p : Nip.t) : Sexp.t =
  match p with
  | Nip.Any -> Sexp.Atom "?"
  | Nip.Prim (Value.Int i) -> Sexp.Atom (string_of_int i)
  | Nip.Prim (Value.Float f) -> Sexp.Atom (Fmt.str "%F" f)
  | Nip.Prim (Value.Bool b) -> Sexp.Atom (string_of_bool b)
  | Nip.Prim (Value.String s) -> Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ]
  | Nip.Prim Value.Null -> Sexp.List [ Sexp.Atom "null" ]
  | Nip.Prim v -> fail "cannot print constant %a" Value.pp v
  | Nip.Pred (c, v) ->
    Sexp.List
      [
        Sexp.Atom (cmp_to_string c);
        (match to_sexp (Nip.Prim v) with
        | Sexp.Atom a -> Sexp.Atom a
        | other -> other);
      ]
  | Nip.Tup fields ->
    Sexp.List
      (Sexp.Atom "tuple"
      :: List.map (fun (l, fp) -> Sexp.List [ Sexp.Atom l; to_sexp fp ]) fields)
  | Nip.Bag (elements, star) ->
    Sexp.List
      ((Sexp.Atom "bag" :: List.map to_sexp elements)
      @ if star then [ Sexp.Atom "*" ] else [])

let of_string (s : string) : Nip.t = of_sexp (Sexp.of_string s)
let to_string (p : Nip.t) : string = Sexp.to_string (to_sexp p)
