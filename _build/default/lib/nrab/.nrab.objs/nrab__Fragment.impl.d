lib/nrab/fragment.ml: List Query
