(** Reference evaluator for NRAB with bag semantics (Table 1).

    This is the semantic ground truth; the mini-DISC engine
    ({!Engine.Exec}) must produce identical results — the test suite
    checks the agreement on every operator. *)

open Nested

exception Runtime_error of string

(** Evaluate a query over a database.  Raises {!Runtime_error} on
    malformed plans and {!Typecheck.Type_error} on ill-typed ones. *)
val eval : Relation.Db.t -> Query.t -> Relation.t

(** The result's bag only (no schema computation for the result value). *)
val eval_data : Relation.Db.t -> Query.t -> Value.t

(** Typing environment of a database: one entry per table. *)
val schema_env : Relation.Db.t -> Typecheck.env
