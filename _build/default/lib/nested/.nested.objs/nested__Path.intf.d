lib/nested/path.mli: Format Value Vtype
