(* Auditing a revenue report (scenario Q10): customer 61402 returned items
   and should show up with a non-zero revenue loss — but the report misses
   them entirely.  Three errors hide in the query; we compare what the
   different explanation approaches recover, and show the engine's
   execution statistics for the original query.

     dune exec examples/tpch_audit.exe *)

let () =
  let s = Option.get (Scenarios.Registry.find "Q10") in
  let inst = s.Scenarios.Scenario.make ~scale:2 () in
  let phi = inst.Scenarios.Scenario.question in
  let q = phi.Whynot.Question.query in

  Fmt.pr "report query:@.  %a@.@." Nrab.Query.pp q;

  (* Static physical plan: where the shuffles are, before running. *)
  let env = Whynot.Pipeline.schema_env phi.Whynot.Question.db in
  Fmt.pr "physical plan:@.%a@.@." Engine.Plan.pp (Engine.Plan.analyze ~env q);

  (* Run the report on the mini-DISC engine and show what a Spark UI
     would show: per-operator cardinalities and shuffles. *)
  let result, stats = Engine.Exec.run phi.Whynot.Question.db q in
  Fmt.pr "report rows: %d@." (Nested.Relation.cardinal result);
  Fmt.pr "%a@.@." Engine.Stats.pp stats;

  Fmt.pr "missing: %a@.@." Whynot.Nip.pp phi.Whynot.Question.missing;

  (* The lineage baseline blames the customer/orders join — misleading:
     even an outer join cannot produce the demanded non-zero revenue. *)
  let wnpp = Baselines.Wnpp.explanations phi in
  Fmt.pr "WN++:   %s   (misleading — cannot yield revenue > 0)@."
    (String.concat ", " (List.map Baselines.Explanation_set.to_string wnpp));

  (* Reparameterization-based explanations without and with schema
     alternatives. *)
  let rpnosa = Whynot.Pipeline.explain ~use_sas:false phi in
  Fmt.pr "RPnoSA: %s@."
    (String.concat ", "
       (List.map
          (Whynot.Explanation.to_string_with_query q)
          rpnosa.Whynot.Pipeline.explanations));
  let rp =
    Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi
  in
  Fmt.pr "RP:     %s@."
    (String.concat ", "
       (List.map
          (Whynot.Explanation.to_string_with_query q)
          rp.Whynot.Pipeline.explanations));

  Fmt.pr
    "@.The last RP explanation {σ, σ, π} pinpoints all three injected\n\
     errors: the return-flag constant, the order-date window, and the\n\
     tax-for-discount swap inside the revenue projection.@."
