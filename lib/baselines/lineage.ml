(* Shared successor tracking for the lineage-based baselines.

   A *compatible* is an input tuple matching the backtraced NIP of its
   table.  Tables whose NIP is trivial impose no constraint: all their
   tuples count as (vacuous) compatibles.  Successors propagate forward:

   - through unary operators, from the single parent;
   - through flatten operators at element granularity (the successor must
     still carry the compatible nested element — the nested-data extension
     of WN++ described in Section 6.2);
   - through joins only when *both* parents are successors (an answer
     needs compatibles from every constrained table); a null-padded row
     counts only if the padded-away side contains no constrained table;
   - through grouping/aggregation when *some* parent is a successor.

   [surviving_only] restricts propagation to the unrelaxed intermediate
   results (Why-Not); with [false] rows that only a repair would admit
   also propagate (Conseil's continue-past-picky behaviour). *)

open Nrab
module Int_set = Set.Make (Int)
module String_set = Set.Make (String)

type info = {
  trace : Whynot.Tracing.t;
  bt : Whynot.Backtrace.t;
  query : Query.t;
}

let original_trace (phi : Whynot.Question.t) : info =
  let db = phi.Whynot.Question.db in
  let q = phi.Whynot.Question.query in
  let env =
    List.map
      (fun (n, r) -> (n, Nested.Relation.schema r))
      (Nested.Relation.Db.tables db)
  in
  let bt = Whynot.Backtrace.run ~env q phi.Whynot.Question.missing in
  let sa0 =
    {
      Whynot.Alternatives.index = 0;
      query = q;
      changed_ops = Int_set.empty;
      description = "original";
    }
  in
  { trace = Whynot.Tracing.run ~env db sa0 bt; bt; query = q }

(* Tables with a non-trivial backtraced NIP. *)
let constrained_tables (info : info) : String_set.t =
  List.fold_left
    (fun acc (name, nip) ->
      if Whynot.Nip.is_trivial nip then acc else String_set.add name acc)
    String_set.empty info.bt.Whynot.Backtrace.table_nips

(* Does the subtree rooted at [op] access a constrained table? *)
let rec subtree_constrained (constrained : String_set.t) (op : Query.t) : bool =
  match op.Query.node with
  | Query.Table name -> String_set.mem name constrained
  | _ -> List.exists (subtree_constrained constrained) op.Query.children

(* op id → query node, and op id → subtree membership test *)
let op_index (q : Query.t) : (int, Query.t) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (op : Query.t) -> Hashtbl.replace tbl op.Query.id op)
    (Query.operators q);
  tbl

let rec op_in_subtree (op : Query.t) (id : int) : bool =
  op.Query.id = id || List.exists (fun c -> op_in_subtree c id) op.Query.children

let successor_rids ~(surviving_only : bool) (info : info) :
    (int, unit) Hashtbl.t =
  let constrained = constrained_tables info in
  let ops_tbl = op_index info.query in
  (* rid → op id, to locate which join side a parent row comes from (the
     annotation vectors make this a range walk — no tree forcing) *)
  let row_op = Hashtbl.create 256 in
  List.iter
    (fun (ot : Whynot.Tracing.op_trace) ->
      let r0 = Whynot.Tracing.rid0 ot in
      for i = 0 to Whynot.Tracing.n_rows ot - 1 do
        Hashtbl.replace row_op (r0 + i) ot.Whynot.Tracing.op_id
      done)
    info.trace.Whynot.Tracing.ops;
  let successor = Hashtbl.create 256 in
  let is_succ rid = Hashtbl.mem successor rid in
  List.iter
    (fun (ot : Whynot.Tracing.op_trace) ->
      let op = Hashtbl.find_opt ops_tbl ot.Whynot.Tracing.op_id in
      let r0 = Whynot.Tracing.rid0 ot in
      for i = 0 to Whynot.Tracing.n_rows ot - 1 do
        let alive =
          (not surviving_only) || Whynot.Tracing.surviving_at ot i
        in
        if alive then begin
          let parents = Whynot.Tracing.parents_at ot i in
          let is_successor =
            match ot.Whynot.Tracing.op_node, op with
            | Query.Table _, _ -> Whynot.Tracing.consistent_at ot i
            | (Query.Flatten _ | Query.Flatten_tuple _), _ ->
              List.exists is_succ parents
              && Whynot.Tracing.consistent_at ot i
            | (Query.Join _ | Query.Product), Some op -> (
              match parents, op.Query.children with
              | [ lp; rp ], _ -> is_succ lp && is_succ rp
              | [ p ], [ lchild; rchild ] ->
                (* null-padded row: [p] sits in one child's subtree; the
                   padded-away side must be unconstrained *)
                let p_op =
                  Option.value ~default:(-1) (Hashtbl.find_opt row_op p)
                in
                let padded_side_unconstrained =
                  if op_in_subtree lchild p_op then
                    not (subtree_constrained constrained rchild)
                  else not (subtree_constrained constrained lchild)
                in
                is_succ p && padded_side_unconstrained
              | _, _ -> false)
            | ( ( Query.Nest_rel _ | Query.Group_agg _ | Query.Dedup
                | Query.Agg_tuple _ ),
                _ ) ->
              List.exists is_succ parents
            | _, _ -> List.exists is_succ parents
          in
          if is_successor then Hashtbl.replace successor (r0 + i) ()
        end
      done)
    info.trace.Whynot.Tracing.ops;
  successor

(* Operators where successors die: every child trace has a successor row
   but no (alive) output row is a successor. *)
let picky_ops ~(surviving_only : bool) (info : info)
    (successor : (int, unit) Hashtbl.t) : int list =
  let ops_tbl = op_index info.query in
  List.filter_map
    (fun (ot : Whynot.Tracing.op_trace) ->
      match ot.Whynot.Tracing.op_node with
      | Query.Table _ -> None
      | _ ->
        let op = Hashtbl.find_opt ops_tbl ot.Whynot.Tracing.op_id in
        let children =
          match op with Some op -> op.Query.children | None -> []
        in
        let child_has_successor (c : Query.t) =
          match Whynot.Tracing.op_trace info.trace c.Query.id with
          | Some o ->
            let r0 = Whynot.Tracing.rid0 o in
            let n = Whynot.Tracing.n_rows o in
            let rec any i = i < n && (Hashtbl.mem successor (r0 + i) || any (i + 1)) in
            any 0
          | None -> false
        in
        let inputs_have_successors =
          children <> [] && List.for_all child_has_successor children
        in
        let output_has_successors =
          let r0 = Whynot.Tracing.rid0 ot in
          let n = Whynot.Tracing.n_rows ot in
          let rec any i =
            i < n
            && ((((not surviving_only) || Whynot.Tracing.surviving_at ot i)
                && Hashtbl.mem successor (r0 + i))
               || any (i + 1))
          in
          any 0
        in
        if inputs_have_successors && not output_has_successors then
          Some ot.Whynot.Tracing.op_id
        else None)
    info.trace.Whynot.Tracing.ops
