(** Approximate MSR computation (Section 5.4, Algorithm 4).

    Algorithm 4's per-operator conditions — a tuple that is valid,
    consistent, NOT retained, and in the lineage of a consistent output
    tuple forces the operator into the partial SR — are computed here per
    derivation: the *failure sets* of a consistent root row's derivations
    are exactly the operator sets that must be reparameterized for that
    row to materialize.  The schema alternative's SR prefix is added,
    side-effect bounds are estimated as in Section 5.4, and explanations
    are pruned and ranked under the partial order of Definition 9. *)

open Nested

module Int_set = Opset.Int_set
module Set_set = Opset.Set_set

(** Cap on alternative failure sets tracked per row (smallest kept). *)
val max_alternatives : int

(** Memoized failure-set computation over a trace's lineage DAG.  For
    grouping operators, each (preferably consistent) member derivation is
    an alternative way to influence the group's row. *)
val failure_sets : Tracing.t -> int -> Set_set.t

(** Rids of root rows matching the why-not question under the
    relaxation (flag-vector reads; no tree reconstruction). *)
val consistent_root_rids : Tracing.t -> int list

(* --- the literal Algorithm 4 --- *)

(** Rows contributing to a consistent root row (the "lineage of a
    consistent output tuple"), as an ancestor closure. *)
val contributing : Tracing.t -> (int, unit) Hashtbl.t

(** The paper's queue-based Algorithm 4, computing candidate SR operator
    sets with existential per-operator conditions.  Coarser than
    {!failure_sets} (its results are a superset); provided for fidelity
    and comparison. *)
val algorithm4 : Tracing.t -> Set_set.t

type bounds_input = {
  original_result : Value.t list;  (** tuples of ⟦Q⟧_D, expanded *)
}

(** Side-effect bounds (LB, UB) of one explanation per Section 5.4; LB is
    0 for explanations containing selections or joins. *)
val bounds :
  bi:bounds_input ->
  q:Nrab.Query.t ->
  Tracing.t ->
  (int -> Set_set.t) ->
  Int_set.t ->
  int * int

(** Explanations contributed by one schema alternative's trace (not yet
    pruned/ranked across SAs).

    [?sample_stride] (default 1 = exact) samples the side-effect bounds
    sweep: only every s-th root row — keyed on the global rid, exactly
    like {!Tracing.run}'s sampler, so both engines sample identically —
    is examined, and the counts are scaled back up into unbiased
    estimates.  Candidate operator sets always come from the consistent
    root rows' failure sets, so a sampled run finds the {e same}
    explanations with {e estimated} LB/UB bounds. *)
val from_trace :
  ?sample_stride:int ->
  bi:bounds_input ->
  q:Nrab.Query.t ->
  Tracing.t ->
  Explanation.t list

(** Early-terminating top-k variant of {!from_trace}: candidates are
    evaluated in {!Explanation.rank}'s dominant order (cardinality, then
    elements) and the walk stops once [k] evaluated explanations provably
    rank ahead of every open candidate — strictly smaller cardinality, or
    equal cardinality with a side-effect upper bound strictly below
    UB(Δ−), the candidate-independent floor every open candidate's UB
    shares.  Returns the evaluated explanations (a superset of the true
    per-SA top [k], still to be pruned/ranked across SAs) and the number
    of candidates skipped unevaluated.  With [k] ≥ the number of
    candidates the result equals {!from_trace}'s exactly.
    [?sample_stride] samples the bounds sweep as in {!from_trace}. *)
val from_trace_topk :
  ?sample_stride:int ->
  bi:bounds_input ->
  q:Nrab.Query.t ->
  k:int ->
  Tracing.t ->
  Explanation.t list * int
