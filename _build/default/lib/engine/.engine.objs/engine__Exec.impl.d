lib/engine/exec.ml: Agg Array Dataset Expr Fmt Fun Hashtbl List Nested Nrab Option Query Relation Stats String Typecheck Value Vtype
