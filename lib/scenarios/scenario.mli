(** Evaluation scenarios (Section 6.2, Tables 4–6, 9, 10).

    A scenario packages a query (possibly with deliberately injected
    errors), a data generator, the why-not question, the attribute
    alternatives handed to the algorithm, and — when errors were injected
    — the gold-standard explanation. *)

open Nrab

type family = Paper | Dblp | Twitter | Tpch | Tpch_flat | Crime | Forestry

type instance = {
  question : Whynot.Question.t;
  alternatives : Whynot.Alternatives.alternatives;
  gold : int list list option;
      (** the operator-id sets that exactly cover the injected errors *)
}

type t = {
  name : string;  (** e.g. "Q10" — the paper's scenario name *)
  family : family;
  description : string;
  operators : string;  (** operator summary, e.g. "π,σ,⋈,Fᴵ" *)
  make : scale:int -> ?seed:int -> unit -> instance;
      (** build the instance at a data scale; [?seed] re-seeds the data
          generator (scenario default when omitted — gold standards are
          validated at the default seed) *)
}

val family_to_string : family -> string

(** (operator symbol, id) pairs of a query, in topological order. *)
val ids_by_symbol : Query.t -> (string * int) list

val pp_instance : Format.formatter -> instance -> unit
